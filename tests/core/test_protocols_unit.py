"""Unit tests for P1/P2/SIMPLE marking protocols (no simulation)."""

from repro.core import (
    MarkingDirectory,
    NoProtocol,
    P1Protocol,
    P2Protocol,
    SimpleProtocol,
)


def p1_with_undone(site_marks: dict[str, set[str]]) -> P1Protocol:
    """Build a P1 protocol with given undone marks installed."""
    from repro.core.marking import MarkingEvent

    protocol = P1Protocol(directory=MarkingDirectory())
    for site, txns in site_marks.items():
        for txn in txns:
            protocol.directory.machine(site).fire(
                txn, MarkingEvent.VOTE_ABORT
            )
    return protocol


class TestNoProtocol:
    def test_always_permissive(self):
        protocol = NoProtocol()
        assert protocol.check_spawn("T9", "S1", {"T1", "T2"}).ok
        assert protocol.validate_at_vote("T9", "S1", {"T1"})
        assert protocol.merge_marks("T9", "S1", set()) == set()


class TestP1:
    def test_spawn_ok_when_marks_subset(self):
        protocol = p1_with_undone({"S1": {"T1"}, "S2": {"T1", "T5"}})
        assert protocol.check_spawn("T9", "S2", {"T1"}).ok

    def test_spawn_ok_with_no_transmarks(self):
        protocol = p1_with_undone({"S1": {"T1"}})
        # Picking up new marks is always allowed at spawn (the mirror
        # check happens at vote time).
        assert protocol.check_spawn("T9", "S1", set()).ok

    def test_spawn_rejected_when_mark_missing(self):
        protocol = p1_with_undone({"S1": {"T1"}})
        protocol.register_execution("T1", ["S1", "S2"])
        result = protocol.check_spawn("T9", "S2", {"T1"})
        assert not result.ok
        assert protocol.rejections == 1
        assert result.retriable

    def test_mark_binds_even_where_marked_txn_never_ran(self):
        """P1(a) is strict: a transaction carrying T1's mark may only
        touch sites undone with respect to T1 — even sites T1 never
        executed at.  The strictness is necessary: a third transaction
        can relay the inconsistency through a T1-free site and close a
        regular cycle.  The rejection stays retriable because the
        clearing rules (UDUM / quiescence) can dissolve the mark."""
        protocol = p1_with_undone({"S1": {"T1"}})
        protocol.register_execution("T1", ["S1"])
        result = protocol.check_spawn("T9", "S3", {"T1"})
        assert not result.ok
        assert result.retriable
        assert not protocol.validate_at_vote("T9", "S3", {"T1"})

    def test_merge_returns_sitemarks(self):
        protocol = p1_with_undone({"S1": {"T1", "T2"}})
        assert protocol.merge_marks("T9", "S1", set()) == {"T1", "T2"}

    def test_validate_at_vote_requires_binding_marks_present(self):
        protocol = p1_with_undone({"S1": {"T1"}, "S2": set()})
        protocol.register_execution("T1", ["S1", "S2"])
        assert protocol.validate_at_vote("T9", "S1", {"T1"})
        assert not protocol.validate_at_vote("T9", "S2", {"T1"})

    def test_udum_cleared_marks_ignored(self):
        protocol = p1_with_undone({"S1": {"T1"}})
        protocol.register_execution("T1", ["S1"])
        # A witness executes at S1 while undone wrt T1 -> UDUM1 -> R3.
        protocol.on_executed("T7", "S1")
        assert protocol.sitemarks("S1") == set()
        # T9 still carries the stale mark; checks must tolerate it.
        assert protocol.check_spawn("T9", "S2", {"T1"}).ok
        assert protocol.validate_at_vote("T9", "S2", {"T1"})

    def test_udum_requires_witness_at_every_exec_site(self):
        protocol = p1_with_undone({"S1": {"T1"}, "S2": {"T1"}})
        protocol.register_execution("T1", ["S1", "S2"])
        protocol.on_executed("T7", "S1")
        assert protocol.sitemarks("S1") == {"T1"}  # S2 lacks a witness
        protocol.on_executed("T8", "S2")
        assert protocol.sitemarks("S1") == set()
        assert protocol.sitemarks("S2") == set()
        assert protocol.directory.udum_log == [("T1", "T8")]


class TestP2:
    def make(self):
        from repro.core.marking import MarkingEvent

        protocol = P2Protocol()
        # T1 executes at S1 and S2; S1 locally committed wrt T1, S2 not yet.
        protocol.register_execution("T1", ["S1", "S2"])
        protocol.directory.machine("S1").fire("T1", MarkingEvent.VOTE_COMMIT)
        return protocol

    def test_spawn_ok_on_lc_site(self):
        protocol = self.make()
        assert protocol.check_spawn("T9", "S1", set()).ok
        assert protocol.merge_marks("T9", "S1", set()) == {"T1"}

    def test_spawn_rejected_mixing_lc_and_unmarked(self):
        protocol = self.make()
        result = protocol.check_spawn("T9", "S2", {"T1"})
        assert not result.ok

    def test_rejection_retriable_when_txn_executes_there_unvoted(self):
        protocol = self.make()
        protocol.register_execution("T1", ["S1", "S2"])
        assert protocol.check_spawn("T9", "S2", {"T1"}).retriable

    def test_decision_commit_clears_marks_globally(self):
        protocol = self.make()
        protocol.on_decision_commit("T1", "S1")
        assert protocol.check_spawn("T9", "S2", {"T1"}).ok
        assert protocol.validate_at_vote("T9", "S2", {"T1"})

    def test_validate_fails_while_undecided(self):
        protocol = self.make()
        assert not protocol.validate_at_vote("T9", "S2", {"T1"})


class TestSimple:
    def make(self):
        from repro.core.marking import MarkingEvent

        protocol = SimpleProtocol()
        protocol.directory.machine("S1").fire("T1", MarkingEvent.VOTE_ABORT)
        return protocol

    def test_first_site_always_ok(self):
        protocol = self.make()
        assert protocol.check_spawn("T9", "S1", set()).ok

    def test_second_site_must_match_undone_set(self):
        protocol = self.make()
        marks = protocol.merge_marks("T9", "S1", set())
        assert marks == {"T1"}
        assert not protocol.check_spawn("T9", "S2", marks).ok

    def test_matching_undone_sets_ok(self):
        from repro.core.marking import MarkingEvent

        protocol = self.make()
        protocol.directory.machine("S2").fire("T1", MarkingEvent.VOTE_ABORT)
        marks = protocol.merge_marks("T9", "S1", set())
        assert protocol.check_spawn("T9", "S2", marks).ok

    def test_lc_site_always_rejected(self):
        from repro.core.marking import MarkingEvent

        protocol = SimpleProtocol()
        protocol.directory.machine("S3").fire("T5", MarkingEvent.VOTE_COMMIT)
        assert not protocol.check_spawn("T9", "S3", set()).ok

    def test_simple_stricter_than_p1(self):
        """SIMPLE rejects configurations P1 accepts (the concurrency
        trade-off of Section 6.2's final remark)."""
        from repro.core.marking import MarkingEvent

        simple = SimpleProtocol()
        simple.directory.machine("S2").fire("T1", MarkingEvent.VOTE_ABORT)
        p1 = P1Protocol(directory=MarkingDirectory())
        p1.directory.machine("S2").fire("T1", MarkingEvent.VOTE_ABORT)
        # T9 starts unmarked at S1 then goes to S2 (undone wrt T1):
        # P1 allows the pickup at spawn; SIMPLE does not.
        marks = set(p1.merge_marks("T9", "S1", set()))
        assert p1.check_spawn("T9", "S2", marks).ok
        smarks = set(simple.merge_marks("T9", "S1", set()))
        assert not simple.check_spawn("T9", "S2", smarks).ok
