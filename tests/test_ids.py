"""Unit tests for identifier helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import ids


def test_global_local_site_ids():
    assert ids.global_txn_id(3) == "T3"
    assert ids.local_txn_id(7) == "L7"
    assert ids.site_id(2) == "S2"


def test_compensation_roundtrip():
    assert ids.compensation_id("T3") == "CT3"
    assert ids.compensated_txn_id("CT3") == "T3"
    assert ids.is_compensation_id("CT3")
    assert not ids.is_compensation_id("T3")


def test_compensation_of_non_standard_id():
    ct = ids.compensation_id("weird")
    assert ids.is_compensation_id(ct)
    assert ids.compensated_txn_id(ct) == "weird"


def test_compensated_of_non_ct_rejected():
    with pytest.raises(ValueError):
        ids.compensated_txn_id("T3")


def test_subtransaction_ids():
    sub = ids.subtransaction_id("T1", "S2")
    assert sub == "T1@S2"
    assert ids.split_subtransaction_id(sub) == ("T1", "S2")
    with pytest.raises(ValueError):
        ids.split_subtransaction_id("no-at-sign")


def test_generator_monotonic_and_independent():
    gen = ids.IdGenerator()
    assert [gen.next_global() for _ in range(3)] == ["T1", "T2", "T3"]
    assert [gen.next_local() for _ in range(2)] == ["L1", "L2"]
    assert gen.next_site() == "S1"
    other = ids.IdGenerator()
    assert other.next_global() == "T1"


@given(st.integers(min_value=1, max_value=10_000))
def test_compensation_roundtrip_property(n):
    txn = ids.global_txn_id(n)
    assert ids.compensated_txn_id(ids.compensation_id(txn)) == txn
