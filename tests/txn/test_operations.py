"""Unit tests for operation helpers."""

from repro.txn import ReadOp, SemanticOp, WriteOp
from repro.txn.operations import is_read_only, keys_of


def test_keys_of_collects_all_keys():
    ops = [ReadOp("a"), WriteOp("b", 1), SemanticOp("deposit", "c", {"amount": 1})]
    assert keys_of(ops) == {"a", "b", "c"}


def test_is_read_only():
    assert is_read_only([ReadOp("a"), ReadOp("b")])
    assert not is_read_only([ReadOp("a"), WriteOp("b", 1)])
    assert not is_read_only([SemanticOp("deposit", "c", {"amount": 1})])
    assert is_read_only([])


def test_op_reprs_are_compact():
    assert repr(ReadOp("x")) == "r[x]"
    assert repr(WriteOp("x", 5)) == "w[x=5]"
    assert repr(SemanticOp("deposit", "x", {"amount": 5})) == "deposit[x](amount=5)"


def test_read_and_write_ops_hashable_and_equal():
    assert ReadOp("x") == ReadOp("x")
    assert {WriteOp("x", 1), WriteOp("x", 1)} == {WriteOp("x", 1)}


def test_semantic_op_hashable_with_unhashable_params():
    # Regression: hashing used to build a tuple of raw param values, which
    # raised TypeError for list/dict-valued params (e.g. insert's value).
    a = SemanticOp("insert", "row", {"value": {"name": "alice", "tags": [1, 2]}})
    b = SemanticOp("insert", "row", {"value": {"name": "alice", "tags": [1, 2]}})
    assert hash(a) == hash(b)
    assert a == b
    assert len({a, b}) == 1


def test_semantic_op_hash_respects_equality():
    # equal ops hash equal regardless of param insertion order
    a = SemanticOp("deposit", "x", {"amount": 1, "memo": "m"})
    b = SemanticOp("deposit", "x", {"memo": "m", "amount": 1})
    assert a == b
    assert hash(a) == hash(b)
    # and distinct params distinguish
    c = SemanticOp("deposit", "x", {"amount": 2, "memo": "m"})
    assert a != c
