"""Unit tests for operation helpers."""

from repro.txn import ReadOp, SemanticOp, WriteOp
from repro.txn.operations import is_read_only, keys_of


def test_keys_of_collects_all_keys():
    ops = [ReadOp("a"), WriteOp("b", 1), SemanticOp("deposit", "c", {"amount": 1})]
    assert keys_of(ops) == {"a", "b", "c"}


def test_is_read_only():
    assert is_read_only([ReadOp("a"), ReadOp("b")])
    assert not is_read_only([ReadOp("a"), WriteOp("b", 1)])
    assert not is_read_only([SemanticOp("deposit", "c", {"amount": 1})])
    assert is_read_only([])


def test_op_reprs_are_compact():
    assert repr(ReadOp("x")) == "r[x]"
    assert repr(WriteOp("x", 5)) == "w[x=5]"
    assert repr(SemanticOp("deposit", "x", {"amount": 5})) == "deposit[x](amount=5)"


def test_read_and_write_ops_hashable_and_equal():
    assert ReadOp("x") == ReadOp("x")
    assert {WriteOp("x", 1), WriteOp("x", 1)} == {WriteOp("x", 1)}
