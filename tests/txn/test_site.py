"""Unit tests for the Site composition root: load, crash, restart."""

from repro.sim import Environment
from repro.txn import Site, WriteOp
from repro.txn.transaction import TxnStatus


def make_site():
    env = Environment()
    site = Site(env, "S1")
    site.load({"a": 1, "b": 2})
    return env, site


def run(env, gen):
    return env.run(env.process(gen))


def test_load_installs_without_logging():
    env, site = make_site()
    assert site.store.get("a") == 1
    assert len(site.wal) == 0


def test_crash_wipes_volatile_state():
    env, site = make_site()

    def txn():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", WriteOp("a", 9))

    run(env, txn())
    old_locks = site.locks
    site.crash()
    assert len(site.store) == 0
    assert site.locks is not old_locks
    assert site.locks.locks_of("T1") == {}
    assert site.crash_count == 1
    # The in-flight transaction is abandoned.
    assert site.ltm.status["T1"] is TxnStatus.ABORTED


def test_wal_survives_crash_and_drives_restart():
    env, site = make_site()

    def committed_txn():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", WriteOp("a", 9))
        site.ltm.commit("L1")

    def in_flight_txn():
        site.ltm.begin("T2")
        yield from site.ltm.execute("T2", WriteOp("b", 99))

    run(env, committed_txn())
    run(env, in_flight_txn())
    site.crash()
    report = site.restart()
    assert site.store.get("a") == 9       # committed work redone
    assert not site.store.exists("b")     # in-flight work undone
    assert "L1" in report.redone
    assert "T2" in report.undone


def test_repeated_crashes_counted():
    env, site = make_site()
    site.crash()
    site.restart()
    site.crash()
    assert site.crash_count == 2


def test_op_duration_applied_per_operation():
    env = Environment()
    site = Site(env, "S1", op_duration=2.0)

    def txn():
        site.ltm.begin("L1")
        yield from site.ltm.run_ops("L1", [WriteOp("a", 1), WriteOp("b", 2)])
        site.ltm.commit("L1")
        return env.now

    assert run(env, txn()) == 4.0
