"""Unit tests for the local transaction manager."""

import pytest

from repro.errors import DeadlockDetected, InvalidTransactionState
from repro.locking import LockMode
from repro.sim import Environment
from repro.storage.wal import RecordType
from repro.txn import ReadOp, SemanticOp, Site, WriteOp


def make_site():
    env = Environment()
    return env, Site(env, "S1")


def run(env, gen):
    """Drive a generator to completion inside a process."""
    return env.run(env.process(gen))


def test_read_returns_value_and_takes_shared_lock():
    env, site = make_site()
    site.load({"x": 42})

    def proc():
        site.ltm.begin("L1")
        value = yield from site.ltm.execute("L1", ReadOp("x"))
        assert site.locks.held_mode("L1", "x") is LockMode.S
        return value

    assert run(env, proc()) == 42
    assert site.ltm.read_results["L1"]["x"] == 42


def test_write_logs_before_image_and_takes_exclusive_lock():
    env, site = make_site()
    site.load({"x": 1})

    def proc():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", WriteOp("x", 2))
        assert site.locks.held_mode("L1", "x") is LockMode.X

    run(env, proc())
    assert site.store.get("x") == 2
    update = site.wal.updates_for("L1")[0]
    assert (update.before, update.after) == (1, 2)


def test_semantic_op_applies_and_records_inverse():
    env, site = make_site()
    site.load({"acct": 100})

    def proc():
        site.ltm.begin("T1")
        result = yield from site.ltm.execute(
            "T1", SemanticOp("deposit", "acct", {"amount": 50})
        )
        return result

    assert run(env, proc()) == 150
    assert site.store.get("acct") == 150
    inverses = site.ltm.recorded_inverses("T1")
    assert len(inverses) == 1
    assert inverses[0].name == "withdraw"
    assert inverses[0].params == {"amount": 50}


def test_inverses_returned_newest_first():
    env, site = make_site()

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.run_ops("T1", [
            SemanticOp("deposit", "a", {"amount": 1}),
            SemanticOp("deposit", "b", {"amount": 2}),
        ])

    run(env, proc())
    assert [op.key for op in site.ltm.recorded_inverses("T1")] == ["b", "a"]


def test_commit_releases_locks_and_records():
    env, site = make_site()

    def proc():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", WriteOp("x", 1))
        site.ltm.commit("L1")

    run(env, proc())
    assert site.locks.locks_of("L1") == {}
    assert "L1" in site.history.committed
    assert site.wal.status_of("L1") is RecordType.COMMIT


def test_abort_local_undoes_and_expunges():
    env, site = make_site()
    site.load({"x": 1})

    def proc():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", WriteOp("x", 99))
        site.ltm.abort_local("L1")

    run(env, proc())
    assert site.store.get("x") == 1
    assert all(op.txn_id != "L1" for op in site.history.ops)
    assert site.locks.locks_of("L1") == {}


def test_prepare_keeps_locks():
    env, site = make_site()

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", WriteOp("x", 1))
        site.ltm.prepare("T1")

    run(env, proc())
    assert site.locks.held_mode("T1", "x") is LockMode.X
    assert site.wal.status_of("T1") is RecordType.PREPARE


def test_local_commit_releases_immediately():
    """The O2PC move: vote YES and release all locks at once (Section 2)."""
    env, site = make_site()

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", WriteOp("x", 1))
        site.ltm.local_commit("T1")

    run(env, proc())
    assert site.locks.locks_of("T1") == {}
    assert site.wal.status_of("T1") is RecordType.LOCAL_COMMIT
    assert "T1" in site.history.committed


def test_complete_commit_after_prepare_releases():
    env, site = make_site()

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", WriteOp("x", 1))
        site.ltm.prepare("T1")
        site.ltm.complete_commit("T1")

    run(env, proc())
    assert site.locks.locks_of("T1") == {}
    assert site.wal.status_of("T1") is RecordType.COMMIT


def test_complete_commit_after_local_commit():
    env, site = make_site()

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", WriteOp("x", 1))
        site.ltm.local_commit("T1")
        site.ltm.complete_commit("T1")

    run(env, proc())
    assert site.wal.status_of("T1") is RecordType.COMMIT


def test_complete_commit_requires_vote_state():
    env, site = make_site()
    site.ltm.begin("T1")
    with pytest.raises(InvalidTransactionState):
        site.ltm.complete_commit("T1")


def test_rollback_subtxn_records_compensation_in_history():
    """Roll-back is modeled as the degenerate CT (Section 3.2)."""
    env, site = make_site()
    site.load({"x": 1})

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", WriteOp("x", 99))
        return site.ltm.rollback_subtxn("T1")

    ct_id = run(env, proc())
    assert ct_id == "CT1"
    assert site.store.get("x") == 1
    assert "T1" in site.history.aborted
    assert "CT1" in site.history.committed
    # The rolled-back T1 exposed nothing at this site: only the degenerate
    # CT remains visible in the SG.
    from repro.sg import SG

    sg = SG.from_history(site.history)
    assert not sg.has_node("T1")
    assert sg.has_node("CT1")


def test_rollback_subtxn_without_updates_skips_ct():
    env, site = make_site()
    site.load({"x": 1})

    def proc():
        site.ltm.begin("T1")
        yield from site.ltm.execute("T1", ReadOp("x"))
        return site.ltm.rollback_subtxn("T1")

    run(env, proc())
    assert "CT1" not in site.history.committed


def test_execute_after_termination_rejected():
    env, site = make_site()

    def proc():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", WriteOp("x", 1))
        site.ltm.commit("L1")
        with pytest.raises(InvalidTransactionState):
            yield from site.ltm.execute("L1", WriteOp("y", 2))

    run(env, proc())


def test_deadlock_propagates_to_caller():
    env, site = make_site()
    outcomes = {}

    def t(txn, first, second):
        site.ltm.begin(txn)
        try:
            yield from site.ltm.execute(txn, WriteOp(first, 1))
            yield env.timeout(1)
            yield from site.ltm.execute(txn, WriteOp(second, 1))
            site.ltm.commit(txn)
            outcomes[txn] = "committed"
        except DeadlockDetected:
            site.ltm.abort_local(txn)
            outcomes[txn] = "deadlocked"

    env.process(t("L1", "x", "y"))
    env.process(t("L2", "y", "x"))
    env.run()
    assert sorted(outcomes.values()) == ["committed", "deadlocked"]
