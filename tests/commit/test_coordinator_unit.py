"""Unit tests for coordinator edge cases: timeouts, retries, collection."""

from repro.commit import CommitConfig, CommitScheme
from repro.harness import System, SystemConfig
from repro.net.message import MsgType
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def spec(sites=("S1", "S2"), txn_id="T1"):
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec(s, [SemanticOp("deposit", "k0", {"amount": 1})])
        for s in sites
    ])


def test_vote_timeout_decides_abort():
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        commit=CommitConfig(vote_timeout=10.0, ack_timeout=10.0,
                            spawn_timeout=10.0, decision_retries=0),
    ))
    proc = system.submit(spec())

    def cut_votes():
        yield system.env.timeout(4.5)
        # Votes from both sites are lost: sever the reply links.
        system.network.sever("S1", "coord.T1", bidirectional=False)
        system.network.sever("S2", "coord.T1", bidirectional=False)

    system.env.process(cut_votes())
    outcome = system.env.run(proc)
    system.env.run()
    assert not outcome.committed
    assert system.sites["S1"].store.get("k0") == 100


def test_spawn_timeout_aborts_and_unwinds_all_sites():
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        commit=CommitConfig(spawn_timeout=8.0, ack_timeout=10.0,
                            vote_timeout=10.0),
    ))
    proc = system.submit(spec())

    def cut_first_ack():
        # The SUBTXN_ACK from S1 never arrives; coordinator times out.
        system.network.sever("S1", "coord.T1", bidirectional=False)
        yield system.env.timeout(9.0)
        system.network.heal("S1", "coord.T1", bidirectional=False)

    system.env.process(cut_first_ack())
    outcome = system.env.run(proc)
    system.env.run()
    assert not outcome.committed
    # S1 executed but must have been unwound by the broadcast abort.
    assert system.sites["S1"].store.get("k0") == 100
    assert system.sites["S1"].locks.locks_of("T1") == {}


def test_max_spawn_retries_bounds_rejection_loops():
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1",
        commit=CommitConfig(max_spawn_retries=2, spawn_retry_delay=1.0),
    ))
    # Manufacture a mark that never clears: T9 "executed" at S1/S2 and S1
    # is undone with respect to it, with a phantom blocker keeping
    # quiescence clearing off.
    from repro.core.marking import MarkingEvent

    system.marking.register_execution("T9", ["S1", "S2"])
    system.directory.machine("S1").fire("T9", MarkingEvent.VOTE_ABORT)
    system.directory.note_marked("T9", "S1")
    system.directory.blockers["T9"].add("phantom")
    system.directory.active.add("T9")

    outcome = system.run_transaction(spec(sites=("S1", "S2")))
    system.env.run()
    assert not outcome.committed
    assert outcome.rejections >= 1
    assert outcome.rejections <= 4  # bounded by max_spawn_retries + 1


def test_duplicate_decision_is_acked_idempotently():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(spec())
    assert outcome.committed
    # Replay the decision by hand: the participant must ACK without
    # re-finalizing (complete_commit would raise on a COMMITTED txn).
    from repro.net.message import Message

    system.network.send(Message(
        msg_type=MsgType.DECISION, sender="coord.T1", recipient="S1",
        txn_id="T1", payload={"decision": "COMMIT"},
    ))
    system.env.run()
    assert system.network.delivered[MsgType.DECISION] >= 3


def test_decision_retransmission_counts_messages():
    """With a participant briefly unreachable, extra DECISION rounds appear
    on the wire — and only then."""
    config = CommitConfig(ack_timeout=10.0, decision_retries=2)
    healthy = System(SystemConfig(scheme=CommitScheme.O2PC, commit=config))
    healthy.run_transaction(spec())
    healthy.env.run()
    assert healthy.network.sent[MsgType.DECISION] == 2  # one per site

    flaky = System(SystemConfig(scheme=CommitScheme.O2PC, commit=config))
    proc = flaky.submit(spec())

    def flap():
        yield flaky.env.timeout(6.4)
        flaky.network.sever("coord.T1", "S1", bidirectional=False)
        yield flaky.env.timeout(12.0)
        flaky.network.heal("coord.T1", "S1", bidirectional=False)

    flaky.env.process(flap())
    outcome = flaky.env.run(proc)
    flaky.env.run()
    assert outcome.committed
    assert flaky.network.sent[MsgType.DECISION] > 2


def test_outcome_timestamps_are_ordered():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(spec())
    assert (
        outcome.start_time
        < outcome.decision_time
        <= outcome.end_time
    )


def test_vote_no_populates_no_votes_field():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    bad = spec()
    bad.subtxns[0].vote = VotePolicy.FORCE_NO
    outcome = system.run_transaction(bad)
    assert outcome.no_votes == ["S1"]
