"""Integration tests: coordinator failure and the blocking problem.

The paper's motivation (Section 1): under 2PC+2PL a participant that voted
YES is blocked — holding locks — until the coordinator's decision arrives,
so a coordinator crash stalls the site's data for the whole outage.  Under
O2PC the locks were released at vote time, so the outage is invisible to
other transactions.
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def spec(txn_id="T1"):
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})]),
    ])


def run_with_coordinator_outage(scheme, outage=100.0):
    """Crash the coordinator after votes are cast; return (system, outcome)."""
    system = System(SystemConfig(scheme=scheme))
    proc = system.submit(spec())
    # With base latency 1 and sequential spawn, votes reach the coordinator
    # at t=6 and the decision record is forced at t=6.5: crash inside that
    # window — votes received, decision not yet sent.
    system.failures.schedule(
        CrashPlan(site_id="coord.T1", at=6.2, duration=outage)
    )
    outcome = system.env.run(proc)
    return system, outcome


def max_hold(system, txn_id="T1"):
    return max(
        h.duration
        for site in system.sites.values()
        for h in site.locks.hold_log
        if h.txn_id == txn_id
    )


def test_2pl_participants_blocked_for_whole_outage():
    system, outcome = run_with_coordinator_outage(CommitScheme.TWO_PL, 100.0)
    assert outcome.committed
    # Locks were held across the 100-unit outage.
    assert max_hold(system) > 100.0


def test_o2pc_participants_unaffected_by_outage():
    system, outcome = run_with_coordinator_outage(CommitScheme.O2PC, 100.0)
    assert outcome.committed
    # Locks were released at vote time: holds are a few message hops only.
    assert max_hold(system) < 10.0


def test_blocking_gap_grows_with_outage():
    gaps = []
    for outage in (50.0, 200.0):
        s2pl, _ = run_with_coordinator_outage(CommitScheme.TWO_PL, outage)
        so2, _ = run_with_coordinator_outage(CommitScheme.O2PC, outage)
        gaps.append(max_hold(s2pl) - max_hold(so2))
    assert gaps[1] > gaps[0] + 100.0


def test_blocked_2pl_site_stalls_other_transactions():
    """A second transaction on the same key waits out the outage under
    2PL but proceeds immediately under O2PC."""

    def run(scheme):
        system = System(SystemConfig(scheme=scheme))
        system.submit(spec("T1"))
        system.failures.schedule(
            CrashPlan(site_id="coord.T1", at=6.2, duration=100.0)
        )

        def late_local():
            yield system.env.timeout(10.0)
            yield system.run_local(
                "S1", system.next_local_id(),
                [SemanticOp("deposit", "k0", {"amount": 1})],
            )
            return system.env.now

        done_at = system.env.run(system.env.process(late_local()))
        system.env.run()
        return done_at

    assert run(CommitScheme.O2PC) < 15.0
    assert run(CommitScheme.TWO_PL) > 100.0


def test_coordinator_crash_before_votes_aborts():
    """Votes sent to a crashed coordinator are lost; on recovery it has no
    YES quorum and decides ABORT (presumed abort)."""
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    proc = system.submit(spec())
    # Crash during the spawn phase already: t=1 .. t=400 covers the vote
    # round trip; vote replies are dropped.
    system.failures.schedule(
        CrashPlan(site_id="coord.T1", at=4.5, duration=400.0)
    )
    outcome = system.env.run(proc)
    assert not outcome.committed
    # All exposed work was compensated; balances intact.
    system.env.run()
    assert system.sites["S1"].store.get("k0") == 100
    assert system.sites["S2"].store.get("k0") == 100
    system.check_correctness()
