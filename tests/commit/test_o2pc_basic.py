"""Integration tests: O2PC happy path and abort-with-compensation."""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.locking import LockMode
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy, WriteOp
from repro.txn.transaction import TxnStatus


def transfer_spec(txn_id="T1", amount=25, vote_s2=VotePolicy.AUTO):
    """Move `amount` from k0@S1 to k0@S2 (restricted model)."""
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": amount})]),
        SubtxnSpec(
            "S2", [SemanticOp("deposit", "k0", {"amount": amount})],
            vote=vote_s2,
        ),
    ])


def test_o2pc_commit_applies_updates_everywhere():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(transfer_spec())
    assert outcome.committed
    assert system.sites["S1"].store.get("k0") == 75
    assert system.sites["S2"].store.get("k0") == 125
    assert outcome.compensated_sites == []
    assert outcome.latency > 0


def test_o2pc_releases_locks_at_vote_not_decision():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(transfer_spec())
    assert outcome.committed
    for sid in ("S1", "S2"):
        holds = [
            h for h in system.sites[sid].locks.hold_log if h.txn_id == "T1"
        ]
        assert holds, f"no hold records at {sid}"
        # Locks were released strictly before the decision reached the site
        # (the decision needs one more message hop after decision_time).
        for hold in holds:
            assert hold.released_at <= outcome.decision_time


def test_2pl_holds_locks_until_decision():
    system = System(SystemConfig(scheme=CommitScheme.TWO_PL))
    outcome = system.run_transaction(transfer_spec())
    assert outcome.committed
    for sid in ("S1", "S2"):
        holds = [
            h for h in system.sites[sid].locks.hold_log if h.txn_id == "T1"
        ]
        for hold in holds:
            # Released only after the decision message arrived (one hop
            # after the coordinator decided).
            assert hold.released_at > outcome.decision_time


def test_o2pc_lock_holds_shorter_than_2pl():
    def run(scheme):
        system = System(SystemConfig(scheme=scheme))
        system.run_transaction(transfer_spec())
        return max(
            h.released_at - h.granted_at
            for site in system.sites.values()
            for h in site.locks.hold_log
        )

    assert run(CommitScheme.O2PC) < run(CommitScheme.TWO_PL)


def test_o2pc_abort_compensates_locally_committed_sites():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(
        transfer_spec(vote_s2=VotePolicy.FORCE_NO)
    )
    assert not outcome.committed
    assert outcome.no_votes == ["S2"]
    # S1 locally committed, then compensated: balance restored.
    assert outcome.compensated_sites == ["S1"]
    assert system.sites["S1"].store.get("k0") == 100
    # S2 voted NO and rolled back before exposing anything.
    assert system.sites["S2"].store.get("k0") == 100
    assert system.sites["S1"].ltm.status["T1"] is TxnStatus.COMPENSATED


def test_o2pc_abort_history_records_compensations():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    system.run_transaction(transfer_spec(vote_s2=VotePolicy.FORCE_NO))
    s1 = system.sites["S1"].history
    s2 = system.sites["S2"].history
    assert "CT1" in s1.committed  # real compensating subtransaction
    assert "CT1" in s2.committed  # degenerate CT (roll-back)
    assert "T1" in s2.aborted
    # Semantic atomicity: every site either committed-or-compensated.
    sg = system.global_sg()
    assert sg.locals["S1"].has_edge("T1", "CT1")


def test_o2pc_run_is_correct_per_paper_criterion():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    system.run_transaction(transfer_spec(vote_s2=VotePolicy.FORCE_NO))
    system.check_correctness()


def test_2pl_abort_rolls_back_without_compensation():
    system = System(SystemConfig(scheme=CommitScheme.TWO_PL))
    outcome = system.run_transaction(
        transfer_spec(vote_s2=VotePolicy.FORCE_NO)
    )
    assert not outcome.committed
    assert outcome.compensated_sites == []
    assert system.sites["S1"].store.get("k0") == 100
    assert system.sites["S2"].store.get("k0") == 100
    # No compensation executor activity under 2PL.
    for participant in system.participants.values():
        assert participant.compensator.stats.started == 0


def test_generic_model_write_ops_commit():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    spec = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k1", "alpha")]),
        SubtxnSpec("S3", [WriteOp("k2", "beta")]),
    ])
    outcome = system.run_transaction(spec)
    assert outcome.committed
    assert system.sites["S1"].store.get("k1") == "alpha"
    assert system.sites["S3"].store.get("k2") == "beta"


def test_generic_model_abort_restores_before_images():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    spec = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k1", "dirty")]),
        SubtxnSpec("S3", [WriteOp("k2", "dirty")], vote=VotePolicy.FORCE_NO),
    ])
    outcome = system.run_transaction(spec)
    assert not outcome.committed
    assert system.sites["S1"].store.get("k1") == 100
    assert system.sites["S3"].store.get("k2") == 100


def test_concurrent_transfers_disjoint_keys_commit():
    system = System(SystemConfig(scheme=CommitScheme.O2PC, n_sites=4))
    specs = [
        GlobalTxnSpec(txn_id=f"T{i}", subtxns=[
            SubtxnSpec("S1", [SemanticOp("withdraw", f"k{i}", {"amount": 5})]),
            SubtxnSpec("S2", [SemanticOp("deposit", f"k{i}", {"amount": 5})]),
        ])
        for i in range(1, 6)
    ]
    for spec in specs:
        system.submit(spec)
    system.env.run()
    assert len(system.outcomes) == 5
    assert all(o.committed for o in system.outcomes)
    for i in range(1, 6):
        assert system.sites["S1"].store.get(f"k{i}") == 95
        assert system.sites["S2"].store.get(f"k{i}") == 105
    system.check_correctness()
