"""Unit tests for participant edge cases."""

from repro.commit import CommitScheme, Participant
from repro.harness import System, SystemConfig
from repro.net import LatencyModel, Message, MsgType, Network
from repro.sim import Environment, Rng
from repro.txn import ReadOp, Site, WriteOp
from repro.txn.transaction import VotePolicy


def make_participant(scheme=CommitScheme.O2PC):
    env = Environment()
    net = Network(env, rng=Rng(0), latency=LatencyModel(base=1.0))
    net.register("coord")
    site = Site(env, "S1")
    site.load({"k0": 100})
    participant = Participant(site, net, scheme=scheme)
    return env, net, site, participant


def msg(mtype, txn="T1", **payload):
    return Message(
        msg_type=mtype, sender="coord", recipient="S1", txn_id=txn,
        payload=payload,
    )


def drain_coord(env, net, count):
    """Receive `count` replies at the coordinator endpoint."""
    got = []

    def receiver():
        for _ in range(count):
            reply = yield net.receive("coord")
            got.append(reply)

    env.run(env.process(receiver()))
    return got


def test_subtxn_then_vote_then_commit_flow():
    env, net, site, participant = make_participant()
    net.send(msg(MsgType.SUBTXN_REQ, ops=[WriteOp("k0", 7)],
                 vote=VotePolicy.AUTO, real_action=False))
    (ack,) = drain_coord(env, net, 1)
    assert ack.msg_type is MsgType.SUBTXN_ACK
    assert ack.payload["executed"]
    net.send(msg(MsgType.VOTE_REQ))
    (vote,) = drain_coord(env, net, 1)
    assert vote.payload["vote"] == "YES"
    assert site.locks.locks_of("T1") == {}  # O2PC released at vote
    net.send(msg(MsgType.DECISION, decision="COMMIT"))
    (ack2,) = drain_coord(env, net, 1)
    assert ack2.msg_type is MsgType.ACK
    assert site.store.get("k0") == 7


def test_vote_req_for_unknown_transaction_votes_no():
    env, net, site, participant = make_participant()
    net.send(msg(MsgType.VOTE_REQ, txn="T99"))
    (vote,) = drain_coord(env, net, 1)
    assert vote.payload["vote"] == "NO"


def test_decision_for_unknown_transaction_acked():
    env, net, site, participant = make_participant()
    net.send(msg(MsgType.DECISION, txn="T99", decision="ABORT"))
    (ack,) = drain_coord(env, net, 1)
    assert ack.msg_type is MsgType.ACK
    assert not ack.payload["compensated"]


def test_unknown_message_type_ignored():
    env, net, site, participant = make_participant()
    net.send(msg(MsgType.ACK))  # a participant never handles ACK
    env.run()
    assert len(net.inbox("coord")) == 0


def test_force_no_vote_rolls_back_before_replying():
    env, net, site, participant = make_participant()
    net.send(msg(MsgType.SUBTXN_REQ, ops=[WriteOp("k0", 7)],
                 vote=VotePolicy.FORCE_NO, real_action=False))
    drain_coord(env, net, 1)
    net.send(msg(MsgType.VOTE_REQ))
    (vote,) = drain_coord(env, net, 1)
    assert vote.payload["vote"] == "NO"
    assert site.store.get("k0") == 100
    assert site.locks.locks_of("T1") == {}


def test_2pl_participant_keeps_locks_at_vote():
    env, net, site, participant = make_participant(CommitScheme.TWO_PL)
    net.send(msg(MsgType.SUBTXN_REQ, ops=[WriteOp("k0", 7)],
                 vote=VotePolicy.AUTO, real_action=False))
    drain_coord(env, net, 1)
    net.send(msg(MsgType.VOTE_REQ))
    (vote,) = drain_coord(env, net, 1)
    assert vote.payload["vote"] == "YES"
    assert site.locks.locks_of("T1") != {}
    net.send(msg(MsgType.DECISION, decision="COMMIT"))
    drain_coord(env, net, 1)
    assert site.locks.locks_of("T1") == {}


def test_read_only_subtxn_abort_has_no_compensation():
    env, net, site, participant = make_participant()
    net.send(msg(MsgType.SUBTXN_REQ, ops=[ReadOp("k0")],
                 vote=VotePolicy.AUTO, real_action=False))
    drain_coord(env, net, 1)
    net.send(msg(MsgType.VOTE_REQ))
    drain_coord(env, net, 1)
    net.send(msg(MsgType.DECISION, decision="ABORT"))
    (ack,) = drain_coord(env, net, 1)
    # A locally-committed read-only subtransaction "compensates" trivially.
    assert ack.payload["compensated"]
    assert participant.compensator.stats.completed == 1
    assert site.store.get("k0") == 100
