"""Integration: parallel subtransaction spawning.

Sequential spawning is required for faithful R1 transmark accumulation;
without a marking protocol the coordinator may submit all subtransactions
at once, saving one round trip per extra site.
"""

from repro.commit import CommitScheme
from repro.commit.base import CommitConfig
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def spec(n_sites=3, force_no=False):
    subtxns = [
        SubtxnSpec(f"S{k}", [SemanticOp("deposit", "k0", {"amount": 1})])
        for k in range(1, n_sites + 1)
    ]
    if force_no:
        subtxns[-1].vote = VotePolicy.FORCE_NO
    return GlobalTxnSpec(txn_id="T1", subtxns=subtxns)


def run(sequential, force_no=False):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        commit=CommitConfig(sequential_spawn=sequential),
    ))
    outcome = system.run_transaction(spec(force_no=force_no))
    system.env.run()
    return system, outcome


def test_parallel_spawn_commits():
    system, outcome = run(sequential=False)
    assert outcome.committed
    for k in (1, 2, 3):
        assert system.sites[f"S{k}"].store.get("k0") == 101


def test_parallel_spawn_is_faster():
    _, seq = run(sequential=True)
    _, par = run(sequential=False)
    assert par.committed and seq.committed
    # Sequential: one round trip per site before voting; parallel: one for
    # all.  With 3 sites and unit latency that saves 4 time units.
    assert par.latency < seq.latency


def test_parallel_spawn_same_message_counts():
    s_seq, _ = run(sequential=True)
    s_par, _ = run(sequential=False)
    assert s_seq.network.counts_by_type() == s_par.network.counts_by_type()


def test_parallel_spawn_abort_path():
    system, outcome = run(sequential=False, force_no=True)
    assert not outcome.committed
    for k in (1, 2, 3):
        assert system.sites[f"S{k}"].store.get("k0") == 100
    system.check_correctness()


def test_parallel_spawn_with_execution_failure_aborts_cleanly():
    """A deadlock victim in the parallel batch short-circuits the global
    transaction; every site is unwound."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        commit=CommitConfig(sequential_spawn=False, spawn_timeout=30.0),
    ))
    # Two transactions on the same keys in opposite per-site op order can
    # deadlock within a site; with one op each and ordered sites they
    # cannot, so force it with two keys in one subtransaction.
    a = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [
            SemanticOp("deposit", "k0", {"amount": 1}),
            SemanticOp("deposit", "k1", {"amount": 1}),
        ]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 1})]),
    ])
    b = GlobalTxnSpec(txn_id="T2", subtxns=[
        SubtxnSpec("S1", [
            SemanticOp("deposit", "k1", {"amount": 1}),
            SemanticOp("deposit", "k0", {"amount": 1}),
        ]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k1", {"amount": 1})]),
    ])
    system.submit(a)
    system.submit(b)
    system.env.run()
    assert len(system.outcomes) == 2
    # At least one commits; a deadlock victim (if any) is fully unwound.
    assert any(o.committed for o in system.outcomes)
    total = sum(
        system.sites[s].store.get(k)
        for s in ("S1", "S2") for k in ("k0", "k1")
    )
    committed = [o for o in system.outcomes if o.committed]
    expected = 400 + 3 * len(committed)
    assert total == expected
    system.check_correctness()


def test_parallel_spawn_with_p1_stays_sound():
    """Parallel spawning defeats sequential transmark accumulation, but the
    vote-time re-validation (recomputed from current site marks) keeps the
    protocol sound — just with more vote-time aborts instead of early
    rejections."""
    from repro.sg import check_atomicity_of_compensation, find_regular_cycle
    from repro.workload import WorkloadConfig, WorkloadGenerator

    for seed in (1, 2, 3):
        system = System(SystemConfig(
            scheme=CommitScheme.O2PC, protocol="P1",
            n_sites=4, keys_per_site=10,
            commit=CommitConfig(sequential_spawn=False),
        ))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=40, abort_probability=0.2,
            read_fraction=0.5, arrival_mean=2.0, zipf_theta=0.5,
        ), seed=seed)
        gen.run()
        assert find_regular_cycle(
            system.global_sg(), system.effective_regular_nodes()
        ) is None
        assert check_atomicity_of_compensation(system.global_history()).ok
