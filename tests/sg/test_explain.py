"""Unit tests for cycle explanations."""

import pytest

from repro.harness import System, SystemConfig
from repro.sg import GlobalSG, find_regular_cycle
from repro.sg.explain import explain_cycle, render_explanation
from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp


def test_explains_hand_built_cycle():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T2", "L1", "CT1")
    gsg.site("S2").add_edge("CT1", "T2")
    cycle = find_regular_cycle(gsg)
    explanations = explain_cycle(gsg, cycle)
    assert len(explanations) == 2
    by_pair = {(e.src, e.dst): e for e in explanations}
    assert by_pair[("T2", "CT1")].site == "S1"
    assert by_pair[("T2", "CT1")].node_path == ["T2", "L1", "CT1"]
    assert by_pair[("CT1", "T2")].node_path == ["CT1", "T2"]


def test_evidence_from_simulated_history():
    system = System(SystemConfig(n_sites=2))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k0", "dirty")]),
        SubtxnSpec("S2", [WriteOp("k0", "dirty")], vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(4.2)
        yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [ReadOp("k0")]),
            SubtxnSpec("S1", [ReadOp("k0")]),
        ]))

    system.env.process(submit_t2())
    system.env.run()
    gsg = system.global_sg()
    cycle = find_regular_cycle(gsg)
    assert cycle is not None
    explanations = explain_cycle(gsg, cycle, system.global_history())
    assert all(e.evidence for e in explanations)
    keys = {
        ev.src_op.key for e in explanations for ev in e.evidence
    }
    assert keys == {"k0"}
    text = render_explanation(explanations)
    assert "k0" in text
    assert "@ S1" in text or "@ S2" in text


def test_non_segment_rejected():
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T1", "T2")
    with pytest.raises(ValueError, match="not a segment"):
        explain_cycle(gsg, ["T2", "T1", "T2"])
