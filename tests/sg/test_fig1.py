"""Reproduction of Figure 1: regular-cycle configurations.

The figure itself is an image in the original paper; the configurations
below are reconstructed from the surrounding text (Sections 4-5): regular
cycles arise when a transaction ``T2`` follows ``T1`` in the SG before
``T1`` is globally committed or fully compensated-for — i.e. ``T2`` is
ordered after ``CT1`` at one site and before (or incomparably to) it at
another.  Four canonical shapes are exercised:

(a) ``T2 -> CT1`` in SG1 and ``CT1 -> T2`` in SG2 — the text's example of a
    pair forming a regular cycle;
(b) the dual orientation with ``T1`` present: ``T1 -> CT1 -> T2`` in SG1,
    ``T2 -> CT1`` in SG2;
(c) a three-site cycle through two regular transactions;
(d) a cycle threaded through a committed local transaction.
"""

from repro.sg import GlobalSG, find_regular_cycle, is_correct
from repro.sg.graph import TxnKind, classify


def assert_regular_cycle(gsg: GlobalSG):
    cycle = find_regular_cycle(gsg)
    assert cycle is not None, "expected a regular cycle"
    assert cycle[0] == cycle[-1]
    assert any(classify(n) is TxnKind.GLOBAL for n in cycle)
    assert not is_correct(gsg)
    return cycle


def test_fig1a_two_site_cycle():
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T2", "CT1")
    gsg.site("S2").add_edge("CT1", "T2")
    cycle = assert_regular_cycle(gsg)
    assert set(cycle) == {"T2", "CT1"}


def test_fig1b_cycle_with_forward_transaction_present():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "CT1", "T2")
    gsg.site("S2").add_edge("T2", "CT1")
    assert_regular_cycle(gsg)


def test_fig1c_three_site_cycle_two_regulars():
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T2", "CT1")
    gsg.site("S2").add_edge("CT1", "T3")
    gsg.site("S3").add_edge("T3", "T2")
    cycle = assert_regular_cycle(gsg)
    assert {"T2", "T3"} <= set(cycle)


def test_fig1d_cycle_through_local_transaction():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T2", "L1", "CT1")
    gsg.site("S2").add_edge("CT1", "T2")
    cycle = assert_regular_cycle(gsg)
    # The local transaction is interior to SG1's segment: boundaries only.
    assert "L1" not in cycle


def test_pure_regular_cycle_also_detected():
    """A cycle among regular transactions only (no CT) is regular too.

    (Lemma 1 says such cycles cannot arise under the protocols; the
    *detector* still must flag them — e.g. if 2PL were violated.)
    """
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T1", "T2")
    gsg.site("S2").add_edge("T2", "T1")
    assert_regular_cycle(gsg)


def test_acyclic_union_has_no_regular_cycle():
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T1", "T2")
    gsg.site("S2").add_edge("T2", "T3")
    gsg.site("S3").add_edge("T1", "T3")
    assert find_regular_cycle(gsg) is None
    assert is_correct(gsg)


def test_ct_and_local_only_cycle_allowed():
    """Cycles of compensating transactions (+ locals) are not regular."""
    gsg = GlobalSG()
    gsg.site("S1").add_path("CT1", "L1", "CT2")
    gsg.site("S2").add_edge("CT2", "CT1")
    assert find_regular_cycle(gsg) is None
    assert is_correct(gsg)


def test_regular_transaction_shortcut_makes_cycle_benign():
    """Example 1's shortcut phenomenon, reduced to its core: if the only
    cycle through a regular transaction can be re-segmented without it,
    there is no regular cycle."""
    gsg = GlobalSG()
    # The cycle visits T9 at SG1/SG2, but SG2 offers CT1 -> CT2 directly.
    gsg.site("S1").add_edge("CT1", "T9")
    gsg.site("S2").add_path("CT1", "T9", "CT2")
    gsg.site("S3").add_edge("CT2", "CT1")
    assert find_regular_cycle(gsg) is None


def test_local_cycle_detected_as_incorrect():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "T2", "T1")
    from repro.sg.cycles import find_local_cycle

    found = find_local_cycle(gsg)
    assert found is not None
    site, cycle = found
    assert site == "S1"
    assert not is_correct(gsg)
