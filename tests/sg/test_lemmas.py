"""Property-based validation of Lemmas 2-3 and Theorem 1 (graph level).

Random global SGs are generated under the paper's structural conventions:

* local SGs are acyclic (local histories are serializable);
* a compensating transaction ``CT_i`` appears only at sites where ``T_i``
  appears, with the forced edge ``T_i -> CT_i`` (compensation is always
  serialized after the forward transaction);
* regular global transactions have a consistent relative order across sites
  (global 2PL: the lock-point order), while compensating transactions are
  placed independently per site (their scheduling is uncoordinated).

Under these conventions the checkers must satisfy:

* **Lemma 2**: a regular cycle implies cycle conditions C1 and C2;
* **Lemma 3 / Theorem 1** (contrapositive): a regular cycle implies that
  both stratification properties fail.
"""

from hypothesis import given, settings, strategies as st

from repro.sg import (
    GlobalSG,
    cycle_condition_c1,
    cycle_condition_c2,
    find_regular_cycle,
    stratification_s1,
    stratification_s2,
)
from repro.sg.cycles import find_local_cycle


@st.composite
def structured_gsg(draw):
    n_sites = draw(st.integers(min_value=1, max_value=3))
    n_globals = draw(st.integers(min_value=1, max_value=4))
    sites = [f"S{k}" for k in range(1, n_sites + 1)]
    globals_ = [f"T{k}" for k in range(1, n_globals + 1)]
    aborted = draw(st.sets(st.sampled_from(globals_)))

    # Which sites each global transaction executes at (non-empty).
    placement = {
        t: draw(
            st.sets(st.sampled_from(sites), min_size=1).map(sorted)
        )
        for t in globals_
    }

    gsg = GlobalSG()
    for site in sites:
        # Build an acyclic local order: regular globals in global order
        # (2PL lock-point order), compensations inserted after their
        # forward transaction at a random offset.
        order: list[str] = [t for t in globals_ if site in placement[t]]
        for t in list(order):
            if t in aborted:
                pos = order.index(t)
                insert_at = draw(
                    st.integers(min_value=pos + 1, max_value=len(order))
                )
                order.insert(insert_at, f"C{t}")
        n_locals = draw(st.integers(min_value=0, max_value=2))
        for k in range(n_locals):
            insert_at = draw(
                st.integers(min_value=0, max_value=len(order))
            )
            order.insert(insert_at, f"L{site[1:]}{k}")

        sg = gsg.site(site)
        for node in order:
            sg.add_node(node)
        # Forced serialization of compensation after its forward txn.
        for t in aborted:
            if site in placement[t]:
                sg.add_edge(t, f"C{t}")
        # Random forward edges along the local order.
        for i in range(len(order)):
            for j in range(i + 1, len(order)):
                if draw(st.booleans()):
                    sg.add_edge(order[i], order[j])
    return gsg


@settings(max_examples=200, deadline=None)
@given(structured_gsg())
def test_generator_produces_acyclic_local_sgs(gsg):
    assert find_local_cycle(gsg) is None


@settings(max_examples=300, deadline=None)
@given(structured_gsg())
def test_lemma2_conjunction_holds_for_two_node_cycles(gsg):
    """Lemma 2 holds for the Figure-1(a) shape: cycles whose boundary is
    exactly one regular transaction and one CT imply both C1 and C2
    (0 failures in 2422 such cycles during an 8000-graph hunt).

    For longer cycles the lemma's literal statement fails — the pairwise
    disorder can split across different transaction pairs so that neither
    condition (or only one) fires; see the pinned counterexamples below.
    Theorem 1 is unaffected in every observed and constructed case: the
    stratification predicates quantify over local path shapes directly
    and fail wherever a cycle exists.
    """
    cycle = find_regular_cycle(gsg)
    if cycle is None or len(set(cycle)) != 2:
        return
    assert cycle_condition_c1(gsg), "Lemma 2: 2-node cycle must imply C1"
    assert cycle_condition_c2(gsg), "Lemma 2: 2-node cycle must imply C2"


def test_lemma2_counterexample_single_ct_two_regulars():
    """Reproduction finding: Lemma 2 fails — in both conditions at once —
    for a cycle through ONE compensation and TWO regular transactions.

    ``T3 -> T4 -> CT1 -> T3``: T3 is after CT1 at S3, T4 is before CT1 at
    S2, and T3 precedes T4 at S1.  Neither C1 nor C2 fires: no *single*
    pair ``(T_i, T_j)`` exhibits the required before/after disorder,
    because it is split between T3 and T4 (and ``T1 → T3``/``T1 → T4``
    edges close every "no local path" escape hatch).  Yet Theorem 1's
    conclusion still holds — the pair (T1, T3) falsifies all of A1–A4, so
    both stratification properties fail.  The published proof chain
    (Lemma 2 → Lemma 3 → Theorem 1) is therefore broken for cycles with
    three or more boundary nodes, while the theorem itself appears true
    (no counterexample in 8000 structured graphs / 2472 cycles).
    """
    gsg = GlobalSG()
    s1, s2, s3 = gsg.site("S1"), gsg.site("S2"), gsg.site("S3")
    # T1 aborted; CT1 appears at T1's sites, after T1.
    for sg in (s1, s2, s3):
        sg.add_edge("T1", "CT1")
    s1.add_edge("T3", "T4")       # T3 before T4
    s1.add_edge("T1", "T3")       # T1 before T3 here (closes C1's escape)
    s2.add_edge("T4", "CT1")      # T4 before the compensation
    s3.add_edge("CT1", "T3")      # T3 after the compensation
    s3.add_edge("T1", "T3")
    s3.add_edge("T1", "T4")

    cycle = find_regular_cycle(gsg)
    assert cycle is not None and set(cycle) == {"T3", "T4", "CT1"}
    assert not cycle_condition_c1(gsg)
    assert not cycle_condition_c2(gsg)
    # Theorem 1 still fine: both stratification properties fail.
    assert not stratification_s1(gsg)
    assert not stratification_s2(gsg)


def test_lemma2_multi_ct_counterexample():
    """Reproduction finding: Lemma 2 as stated fails for multi-CT cycles.

    The cycle ``T3 -> CT1 -> CT2 -> T3`` (T3 before CT1 at S1, CT1 before
    CT2 at S3 — a data conflict between two compensations — and CT2 before
    T3 at S2) is a regular cycle, yet condition C1 does not hold: no pair
    ``(T_i, T_j)`` has ``CT_i -> T_j`` at one site together with the
    required disorder at another — the inconsistency is carried by the
    CT-CT segment, which the pairwise conditions cannot see.  Theorem 1's
    conclusion still holds (both S1 and S2 fail, via the pair (T2, T3)),
    so only the intermediate lemma is too weak, not the final result.
    Found by the property test's random search; pinned here.
    """
    gsg = GlobalSG()
    s1, s2, s3 = gsg.site("S1"), gsg.site("S2"), gsg.site("S3")
    s1.add_edge("T1", "CT1")
    s1.add_edge("T2", "CT2")
    s1.add_edge("T2", "T3")
    s1.add_edge("T3", "CT1")
    s2.add_edge("T2", "CT2")
    s2.add_edge("CT2", "T3")
    s3.add_edge("T1", "CT1")
    s3.add_edge("T2", "CT2")
    s3.add_edge("CT1", "CT2")

    cycle = find_regular_cycle(gsg)
    assert cycle == ["T3", "CT1", "CT2", "T3"]
    assert not cycle_condition_c1(gsg)      # Lemma 2's C1 fails...
    assert not stratification_s1(gsg)       # ...but Theorem 1 survives:
    assert not stratification_s2(gsg)       # both properties still fail.


@settings(max_examples=300, deadline=None)
@given(structured_gsg())
def test_theorem1_stratification_prevents_regular_cycles(gsg):
    """Contrapositive of Theorem 1: a regular cycle falsifies S1 and S2.

    Unlike Lemma 2, this held through a dedicated 5000-example hunt even
    for multi-CT cycles.
    """
    if find_regular_cycle(gsg) is not None:
        assert not stratification_s1(gsg)
        assert not stratification_s2(gsg)


@settings(max_examples=300, deadline=None)
@given(structured_gsg())
def test_lemma3_in_proof_context(gsg):
    """Lemma 3 as the proof uses it: on graphs with a regular cycle, the
    cycle conditions derived from it falsify the stratification
    properties.  (The standalone implication ``C2 ⇒ ¬S2`` over arbitrary
    graphs is falsified by a danger-free C2 instance — see
    test_lemma3_standalone_counterexample.)"""
    if find_regular_cycle(gsg) is None:
        return
    if cycle_condition_c1(gsg):
        assert not stratification_s1(gsg), "Lemma 3: C1 must falsify S1"
    if cycle_condition_c2(gsg):
        assert not stratification_s2(gsg), "Lemma 3: C2 must falsify S2"


def test_lemma3_standalone_counterexample():
    """Reproduction finding: Lemma 3's implications do not hold for C1/C2
    instances that are not backed by a cycle.

    Here ``T1 → CT2`` at S1 satisfies C2 for the pair (T2, T1) — the
    second disjunct fires vacuously because T2 never executed at S2 — yet
    the history is a DAG and perfectly harmless: T1 is consistently
    serialized *before* T2 and its compensation, so the pair is never
    *active* and S2 holds.  In the paper's proof chain Lemma 3 is only
    applied to conditions derived from a regular cycle (Lemma 2's
    output), where the activity requirement is met; as a standalone graph
    implication it is too strong.  Theorem 1 is unaffected (verified by a
    5000-example hunt).
    """
    gsg = GlobalSG()
    s1, s2 = gsg.site("S1"), gsg.site("S2")
    s1.add_edge("T1", "CT1")
    s1.add_edge("CT1", "CT2")
    s1.add_edge("CT1", "T2")
    s1.add_edge("T2", "CT2")
    s2.add_edge("T1", "CT1")

    assert find_regular_cycle(gsg) is None          # harmless DAG
    assert cycle_condition_c2(gsg)                   # yet C2 fires
    assert stratification_s2(gsg)                    # and S2 holds


@settings(max_examples=300, deadline=None)
@given(structured_gsg())
def test_lemma1_regular_cycles_include_compensation_under_conventions(gsg):
    """Lemma 1 at graph level: with consistent global ordering (2PL), a
    regular cycle can only be closed through a compensating transaction."""
    cycle = find_regular_cycle(gsg)
    if cycle is not None:
        assert any(n.startswith("CT") for n in cycle)
