"""The incremental ConflictIndex agrees with the pairwise scan — always.

``SG.from_history`` is now a view over :class:`repro.sg.index.ConflictIndex`;
``SG.from_history_scan`` keeps the original O(n²) rebuild as the oracle.
The property test here drives random histories (including aborts, commits,
and expunges) through both builders and demands identical graphs; the unit
tests pin the individual invariants the view relies on.
"""

from hypothesis import given, settings, strategies as st

from repro.core.marks import MARKS_KEY
from repro.errors import HistoryError
from repro.sg import (
    SG,
    ConflictIndex,
    GlobalHistory,
    GlobalSG,
    SiteHistory,
    verify_conflict_index,
)
from repro.sg.conflicts import OpKind, Operation


TXNS = ["T1", "T2", "CT1", "L1", "L2"]
KEYS = ["x", "y", MARKS_KEY]
SITES = ["S1", "S2"]

op_entry = st.tuples(
    st.sampled_from(SITES),
    st.sampled_from(TXNS),
    st.sampled_from(["r", "w"]),
    st.sampled_from(KEYS),
)


@st.composite
def random_history(draw):
    """A global history with random terminations and expunges mixed in."""
    history = GlobalHistory()
    ops = draw(st.lists(op_entry, max_size=30))
    terminated: set[tuple[str, str]] = set()
    for site_id, txn, kind, key in ops:
        if (site_id, txn) in terminated:
            continue
        site = history.site(site_id)
        if kind == "r":
            site.read(txn, key)
        else:
            site.write(txn, key)
        verdict = draw(
            st.sampled_from(["open", "open", "open", "commit", "expunge"])
        )
        if verdict == "commit":
            site.commit(txn)
            terminated.add((site_id, txn))
        elif verdict == "expunge":
            site.abort(txn)
            site.expunge(txn)
    # Randomly terminate whatever is still open per site.
    for site in history.sites.values():
        for txn in sorted(site.transactions()):
            if txn in site.committed or txn in site.aborted:
                continue
            verdict = draw(st.sampled_from(["commit", "abort", "open"]))
            if verdict == "commit":
                site.commit(txn)
            elif verdict == "abort":
                site.abort(txn)
    return history


@settings(max_examples=200, deadline=None)
@given(random_history())
def test_index_view_matches_pairwise_scan(history):
    fast = GlobalSG.from_history(history)
    slow = GlobalSG.from_history_scan(history)
    assert fast.nodes == slow.nodes
    assert fast.union_edges() == slow.union_edges()
    for site_id, sg in fast.locals.items():
        assert sg.edges() == slow.locals[site_id].edges()
    verify_conflict_index(history)  # must not raise


class TestConflictIndex:
    def test_write_write_and_read_write_edges(self):
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.read("T2", "x")
        h.write("T3", "x")
        edges = {pair for pair, _keys in h.index.edges()}
        # T3's write conflicts with BOTH earlier accessors, including the
        # transitive T1 -> T3 edge the pairwise scan would find.
        assert edges == {("T1", "T2"), ("T1", "T3"), ("T2", "T3")}

    def test_reads_do_not_conflict(self):
        h = SiteHistory("S1")
        h.read("T1", "x")
        h.read("T2", "x")
        assert len(h.index) == 0

    def test_edges_remember_inducing_keys(self):
        h = SiteHistory("S1")
        h.write("T1", MARKS_KEY)
        h.write("T2", MARKS_KEY)
        h.write("T1", "x")  # wrong order on purpose: T1 not terminated yet
        h.read("T2", "x")
        (pair, keys), = h.index.edges()
        assert pair == ("T1", "T2")
        assert keys == {MARKS_KEY, "x"}

    def test_marks_only_edges_excluded_from_sg(self):
        h = SiteHistory("S1")
        h.write("T1", MARKS_KEY)
        h.write("T2", MARKS_KEY)
        h.commit("T1")
        h.commit("T2")
        assert len(h.index) == 1  # the edge exists in the index ...
        assert SG.from_history(h).edges() == []  # ... but not in the SG
        assert SG.from_history_scan(h).edges() == []

    def test_forget_removes_incident_edges_only(self):
        index = ConflictIndex()
        ops = [
            Operation("T1", OpKind.WRITE, "x", "S1", 0),
            Operation("T2", OpKind.WRITE, "x", "S1", 1),
            Operation("T3", OpKind.WRITE, "x", "S1", 2),
        ]
        for op in ops:
            index.record(op)
        index.forget("T2")
        assert {pair for pair, _ in index.edges()} == {("T1", "T3")}

    def test_forget_then_rerecord_is_clean(self):
        index = ConflictIndex()
        index.record(Operation("T1", OpKind.WRITE, "x", "S1", 0))
        index.record(Operation("T2", OpKind.READ, "x", "S1", 1))
        index.forget("T1")
        # T1 is gone entirely: a new reader sees no writer of x.
        index.record(Operation("T3", OpKind.READ, "x", "S1", 2))
        assert len(index) == 0


class TestExpungeConsistency:
    def test_expunge_updates_index(self):
        h = SiteHistory("S1")
        h.write("L1", "x")
        h.write("T1", "x")
        h.commit("T1")
        h.abort("L1")
        h.expunge("L1")
        assert {pair for pair, _ in h.index.edges()} == set()
        assert SG.from_history(h).edges() == SG.from_history_scan(h).edges()

    def test_expunge_does_not_reuse_seq(self):
        """Regression: seq must stay monotonic across expunges.

        With a ``len(ops)``-based counter, expunging L1's two operations
        let T2's op reuse seq 1 — colliding with T1's op and breaking the
        "seq orders operations" invariant the explain/order layers use.
        """
        h = SiteHistory("S1")
        h.write("L1", "x")
        op_t1 = h.write("T1", "y")
        h.write("L1", "z")
        h.abort("L1")
        h.expunge("L1")
        op_t2 = h.write("T2", "y")
        assert op_t2.seq > op_t1.seq
        seqs = [op.seq for op in h.ops]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))

    def test_post_init_resumes_seq_past_preseeded_ops(self):
        preseeded = [
            Operation("T1", OpKind.WRITE, "x", "S1", 0),
            Operation("T2", OpKind.READ, "x", "S1", 5),
        ]
        h = SiteHistory("S1", ops=list(preseeded))
        op = h.write("T3", "x")
        assert op.seq == 6
        # ... and the index was seeded from the pre-recorded ops.
        assert ("T1", "T2") in dict(h.index.edges())


class TestVerifyConflictIndex:
    def test_clean_history_passes(self):
        history = GlobalHistory()
        site = history.site("S1")
        site.write("T1", "x")
        site.read("T2", "x")
        site.commit("T1")
        site.commit("T2")
        verify_conflict_index(history)

    def test_corrupted_index_is_detected(self):
        history = GlobalHistory()
        site = history.site("S1")
        site.write("T1", "x")
        site.write("T2", "x")
        site.commit("T1")
        site.commit("T2")
        site.index.forget("T1")  # sabotage the index behind the history
        try:
            verify_conflict_index(history)
        except HistoryError as exc:
            assert "S1" in str(exc)
        else:
            raise AssertionError("divergence not detected")
