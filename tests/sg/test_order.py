"""Unit tests for serialization-order witnesses."""

import pytest

from repro.errors import CorrectnessViolation
from repro.sg import GlobalSG
from repro.sg.order import is_serializable, serialization_order


def test_acyclic_graph_orders_topologically():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "T2")
    gsg.site("S2").add_path("T2", "T3")
    order = serialization_order(gsg)
    flat = [node for group in order for node in group]
    assert flat.index("T1") < flat.index("T2") < flat.index("T3")
    assert all(len(g) == 1 for g in order)
    assert is_serializable(gsg)


def test_ct_cycle_grouped_not_rejected():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "CT1", "CT2")
    gsg.site("S2").add_edge("CT2", "CT1")
    order = serialization_order(gsg)
    groups = {frozenset(g) for g in order if len(g) > 1}
    assert frozenset({"CT1", "CT2"}) in groups
    assert not is_serializable(gsg)  # cyclic, just allowed


def test_ct_group_ordered_after_forward_txn():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "CT1", "CT2")
    gsg.site("S2").add_edge("CT2", "CT1")
    order = serialization_order(gsg)
    flat_groups = [set(g) for g in order]
    t1_pos = next(i for i, g in enumerate(flat_groups) if "T1" in g)
    ct_pos = next(i for i, g in enumerate(flat_groups) if "CT1" in g)
    assert t1_pos < ct_pos


def test_regular_cycle_raises():
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T2", "CT1")
    gsg.site("S2").add_edge("CT1", "T2")
    with pytest.raises(CorrectnessViolation):
        serialization_order(gsg)


def test_local_cycle_raises():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "T2", "T1")
    with pytest.raises(CorrectnessViolation):
        serialization_order(gsg)


def test_narrowed_regular_set_allows_aborted_cycles():
    """With the effective criterion, a cycle through an aborted (revoked)
    transaction is grouped like a CT cycle instead of rejected."""
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T9", "CT1")
    gsg.site("S2").add_edge("CT1", "T9")
    with pytest.raises(CorrectnessViolation):
        serialization_order(gsg)  # literal criterion: T9 is regular
    order = serialization_order(gsg, regular_nodes=set())  # T9 aborted
    groups = {frozenset(g) for g in order if len(g) > 1}
    assert frozenset({"T9", "CT1"}) in groups


def test_witness_respects_every_edge():
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "T3")
    gsg.site("S2").add_path("T2", "T3")
    gsg.site("S3").add_path("T1", "T2")
    order = serialization_order(gsg)
    position = {
        node: i for i, group in enumerate(order) for node in group
    }
    for src, dst in gsg.union_edges():
        assert position[src] < position[dst]
