"""Unit tests for local and global serialization graphs."""

import pytest

from repro.sg import GlobalSG, SG, SiteHistory, TxnKind, classify
from repro.sg.history import GlobalHistory


class TestClassify:
    def test_populations(self):
        assert classify("T1") is TxnKind.GLOBAL
        assert classify("CT1") is TxnKind.COMPENSATING
        assert classify("L3") is TxnKind.LOCAL


class TestSGConstruction:
    def test_from_history_conflict_edges(self):
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.read("T2", "x")
        h.write("T2", "y")
        h.write("T3", "y")
        sg = SG.from_history(h)
        assert sg.has_edge("T1", "T2")
        assert sg.has_edge("T2", "T3")
        assert not sg.has_edge("T1", "T3")

    def test_from_history_excludes_uncommitted_local(self):
        h = SiteHistory("S1")
        h.write("L1", "x")  # local, never committed
        h.write("L2", "y")
        h.commit("L2")
        h.write("T1", "x")
        sg = SG.from_history(h)
        assert not sg.has_node("L1")
        assert sg.has_node("L2")
        assert sg.has_node("T1")
        # L1's ops create no edges
        assert sg.successors("T1") == set()

    def test_from_history_excludes_rolled_back_global(self):
        """A subtransaction rolled back at this site exposed nothing here:
        its operations leave the SG; the degenerate CT's restoring writes
        (recorded separately, as a committed CT) remain."""
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.abort("T1")
        h.write("CT1", "x")
        h.commit("CT1")
        h.read("T2", "x")
        sg = SG.from_history(h)
        assert not sg.has_node("T1")
        assert sg.has_edge("CT1", "T2")

    def test_from_history_keeps_locally_committed_then_compensated(self):
        """A locally-committed transaction *did* expose updates: it stays,
        with the compensation serialized after it."""
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.commit("T1")  # local commitment (O2PC YES vote)
        h.write("CT1", "x")
        h.commit("CT1")
        sg = SG.from_history(h)
        assert sg.has_edge("T1", "CT1")

    def test_reads_do_not_conflict(self):
        h = SiteHistory("S1")
        h.read("T1", "x")
        h.read("T2", "x")
        sg = SG.from_history(h)
        assert sg.edges() == []


class TestSGQueries:
    def test_add_path_and_reachability(self):
        sg = SG("S1")
        sg.add_path("A", "B", "C", "D")
        assert sg.reachable("A", "D")
        assert not sg.reachable("D", "A")
        assert sg.connected_either_direction("D", "A")

    def test_reachable_requires_nonempty_path(self):
        sg = SG("S1")
        sg.add_node("A")
        assert not sg.reachable("A", "A")

    def test_reachable_with_avoid(self):
        sg = SG("S1")
        sg.add_path("A", "B", "C")
        sg.add_edge("A", "C")
        assert sg.reachable("A", "C", avoid="B")
        sg2 = SG("S2")
        sg2.add_path("A", "B", "C")
        assert not sg2.reachable("A", "C", avoid="B")

    def test_avoid_does_not_exclude_endpoints(self):
        sg = SG("S1")
        sg.add_path("A", "B")
        assert sg.reachable("A", "B", avoid="A")
        assert sg.reachable("A", "B", avoid="B")

    def test_self_loop_rejected(self):
        sg = SG("S1")
        with pytest.raises(ValueError):
            sg.add_edge("A", "A")

    def test_find_local_cycle(self):
        sg = SG("S1")
        sg.add_path("A", "B", "C", "A")
        cycle = sg.find_local_cycle()
        assert cycle is not None and cycle[0] == cycle[-1]
        assert set(cycle) == {"A", "B", "C"}

    def test_find_local_cycle_none_in_dag(self):
        sg = SG("S1")
        sg.add_path("A", "B", "C")
        assert sg.find_local_cycle() is None


class TestGlobalSG:
    def test_union_nodes_and_edges(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "T2")
        gsg.site("S2").add_edge("T2", "T3")
        assert gsg.nodes == {"T1", "T2", "T3"}
        assert gsg.union_edges() == {("T1", "T2"), ("T2", "T3")}

    def test_sites_with(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "T2")
        gsg.site("S2").add_edge("T2", "T3")
        assert gsg.sites_with("T2") == ["S1", "S2"]
        assert gsg.sites_with("T1", "T2") == ["S1"]
        assert gsg.sites_with("T1", "T3") == []

    def test_from_history(self):
        gh = GlobalHistory()
        gh.site("S1").write("T1", "x")
        gh.site("S1").read("T2", "x")
        gh.site("S2").write("T2", "y")
        gsg = GlobalSG.from_history(gh)
        assert gsg.locals["S1"].has_edge("T1", "T2")
        assert gsg.locals["S2"].has_node("T2")

    def test_nodes_of_kind(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "CT2")
        gsg.site("S1").add_edge("L1", "T1")
        assert gsg.nodes_of_kind(TxnKind.GLOBAL) == {"T1"}
        assert gsg.nodes_of_kind(TxnKind.COMPENSATING) == {"CT2"}
        assert gsg.nodes_of_kind(TxnKind.LOCAL) == {"L1"}
