"""Unit tests for atomicity of compensation (Theorem 2)."""

from repro.sg import GlobalHistory, check_atomicity_of_compensation
from repro.sg.atomicity import compensation_writes_cover


def test_reader_of_both_t_and_ct_flagged():
    gh = GlobalHistory()
    s1 = gh.site("S1")
    s1.write("T1", "x")
    s1.read("T2", "x")       # T2 reads from T1
    s2 = gh.site("S2")
    s2.write("T1", "y")
    s2.write("CT1", "y")
    s2.read("T2", "y")       # T2 reads from CT1
    report = check_atomicity_of_compensation(gh)
    assert not report.ok
    assert report.violations == [("T2", "T1")]


def test_reading_only_forward_transaction_ok():
    gh = GlobalHistory()
    s1 = gh.site("S1")
    s1.write("T1", "x")
    s1.read("T2", "x")
    report = check_atomicity_of_compensation(gh)
    assert report.ok


def test_reading_only_compensation_ok():
    gh = GlobalHistory()
    s1 = gh.site("S1")
    s1.write("T1", "x")
    s1.write("CT1", "x")
    s1.read("T2", "x")       # reads the compensated state only
    report = check_atomicity_of_compensation(gh)
    assert report.ok


def test_theorem2_precondition_checker():
    gh = GlobalHistory()
    s1 = gh.site("S1")
    s1.write("T1", "x")
    s1.write("T1", "y")
    s1.write("CT1", "x")
    assert not compensation_writes_cover(gh, "T1")
    s1.write("CT1", "y")
    assert compensation_writes_cover(gh, "T1")


def test_cover_checked_per_site():
    gh = GlobalHistory()
    gh.site("S1").write("T1", "x")
    gh.site("S1").write("CT1", "x")
    gh.site("S2").write("T1", "z")
    # CT1 wrote nothing at S2.
    assert not compensation_writes_cover(gh, "T1")


def test_cover_ignores_sites_without_t_writes():
    gh = GlobalHistory()
    gh.site("S1").write("T1", "x")
    gh.site("S1").write("CT1", "x")
    gh.site("S2").read("T1", "z")  # read-only at S2
    assert compensation_writes_cover(gh, "T1")
