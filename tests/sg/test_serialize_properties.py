"""Property-based tests: history serialization round-trips exactly."""

from hypothesis import given, settings, strategies as st

from repro.sg import GlobalHistory, GlobalSG, find_regular_cycle
from repro.sg.cycles import find_local_cycle
from repro.sg.serialize import history_from_dict, history_to_dict


TXNS = ["T1", "T2", "CT1", "L1"]
KEYS = ["x", "y"]
SITES = ["S1", "S2"]

op_entry = st.tuples(
    st.sampled_from(SITES),
    st.sampled_from(TXNS),
    st.sampled_from(["r", "w"]),
    st.sampled_from(KEYS),
)


@st.composite
def random_history(draw):
    history = GlobalHistory()
    ops = draw(st.lists(op_entry, max_size=25))
    terminated: set[tuple[str, str]] = set()
    for site_id, txn, kind, key in ops:
        if (site_id, txn) in terminated:
            continue
        site = history.site(site_id)
        if kind == "r":
            site.read(txn, key)
        else:
            site.write(txn, key)
    # Randomly terminate some transactions per site.
    for site_id, site in history.sites.items():
        for txn in sorted(site.transactions()):
            verdict = draw(st.sampled_from(["commit", "abort", "open"]))
            if verdict == "commit":
                site.commit(txn)
            elif verdict == "abort":
                site.abort(txn)
    return history


@settings(max_examples=200, deadline=None)
@given(random_history())
def test_roundtrip_is_exact(history):
    data = history_to_dict(history)
    rebuilt = history_from_dict(data)
    assert history_to_dict(rebuilt) == data


@settings(max_examples=100, deadline=None)
@given(random_history())
def test_roundtrip_preserves_sg_verdicts(history):
    rebuilt = history_from_dict(history_to_dict(history))
    original_gsg = GlobalSG.from_history(history)
    rebuilt_gsg = GlobalSG.from_history(rebuilt)
    assert original_gsg.union_edges() == rebuilt_gsg.union_edges()
    assert find_regular_cycle(original_gsg) == find_regular_cycle(rebuilt_gsg)
    assert find_local_cycle(original_gsg) == find_local_cycle(rebuilt_gsg)
