"""Reproduction of the paper's Example 1 (Section 5).

Local paths:
    CT1 -> T2            in SG1
    CT1 -> T2 -> CT3     in SG2
    CT3 -> CT1           in SG3

The paper's observations, verified here:

* the global path ``CT1 -> CT3`` has two representations; the minimal one is
  the single segment inside SG2;
* the global path ``CT1 -> CT3`` does **not** include ``T2``;
* there are no regular cycles.
"""

from repro.sg import (
    GlobalSG,
    find_regular_cycle,
    global_path_exists,
    is_correct,
    minimal_representations,
    path_includes,
)


def example1() -> GlobalSG:
    gsg = GlobalSG()
    gsg.site("S1").add_path("CT1", "T2")
    gsg.site("S2").add_path("CT1", "T2", "CT3")
    gsg.site("S3").add_path("CT3", "CT1")
    return gsg


def test_global_path_ct1_to_ct3_exists():
    assert global_path_exists(example1(), "CT1", "CT3")


def test_minimal_representation_is_single_sg2_segment():
    reps = minimal_representations(example1(), "CT1", "CT3")
    assert len(reps) == 1
    (rep,) = reps
    assert len(rep) == 1
    segment = rep[0]
    assert (segment.src, segment.dst) == ("CT1", "CT3")
    assert segment.sites == frozenset({"S2"})


def test_path_does_not_include_t2():
    gsg = example1()
    assert not path_includes(gsg, "CT1", "CT3", "T2")


def test_path_includes_endpoints():
    gsg = example1()
    assert path_includes(gsg, "CT1", "CT3", "CT1")
    assert path_includes(gsg, "CT1", "CT3", "CT3")


def test_two_segment_path_includes_intermediate():
    # CT1 -> T2 is 1 segment; the path CT1 -> CT3 via S1 then S2 is 2
    # segments and hence non-minimal, but T2 -> CT3's own minimal path
    # includes its endpoints.
    gsg = example1()
    assert path_includes(gsg, "T2", "CT3", "T2")


def test_no_regular_cycles_in_example1():
    """The paper: "Observe that there are no regular cycles in Example 1."

    The cyclic path ``T2 -> CT3 -> CT1 -> T2`` exists in the union graph,
    but its minimal cyclic representation is ``CT3 -> CT1 -> CT3`` (the SG2
    segment ``CT1 -> CT3`` shortcuts through ``T2``), which contains no
    regular transaction.
    """
    gsg = example1()
    assert find_regular_cycle(gsg) is None
    assert is_correct(gsg)


def test_ct_only_cycle_is_allowed():
    reps = minimal_representations(example1(), "CT1", "CT1")
    assert reps, "a cyclic path through CT1 exists"
    for rep in reps:
        boundary = {seg.src for seg in rep} | {seg.dst for seg in rep}
        assert boundary <= {"CT1", "CT3"}
