"""Unit tests for operations, conflicts, and histories."""

import pytest

from repro.errors import HistoryError
from repro.sg import GlobalHistory, OpKind, Operation, SiteHistory, conflicts


def op(txn, kind, key, seq=0, site="S1"):
    return Operation(txn_id=txn, kind=kind, key=key, site=site, seq=seq)


class TestConflicts:
    def test_write_write_conflict(self):
        assert conflicts(op("T1", OpKind.WRITE, "x"), op("T2", OpKind.WRITE, "x"))

    def test_read_write_conflict_both_orders(self):
        assert conflicts(op("T1", OpKind.READ, "x"), op("T2", OpKind.WRITE, "x"))
        assert conflicts(op("T1", OpKind.WRITE, "x"), op("T2", OpKind.READ, "x"))

    def test_read_read_no_conflict(self):
        assert not conflicts(op("T1", OpKind.READ, "x"), op("T2", OpKind.READ, "x"))

    def test_same_transaction_no_conflict(self):
        assert not conflicts(
            op("T1", OpKind.WRITE, "x"), op("T1", OpKind.WRITE, "x", seq=1)
        )

    def test_different_keys_no_conflict(self):
        assert not conflicts(op("T1", OpKind.WRITE, "x"), op("T2", OpKind.WRITE, "y"))


class TestSiteHistory:
    def test_ops_sequenced_in_order(self):
        h = SiteHistory("S1")
        h.read("T1", "x")
        h.write("T1", "x")
        assert [o.seq for o in h.ops] == [0, 1]
        assert h.transactions() == {"T1"}

    def test_ops_of_filters(self):
        h = SiteHistory("S1")
        h.read("T1", "x")
        h.write("T2", "y")
        h.write("T1", "z")
        assert [o.key for o in h.ops_of("T1")] == ["x", "z"]

    def test_terminated_txn_rejects_new_ops(self):
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.commit("T1")
        with pytest.raises(HistoryError):
            h.read("T1", "y")

    def test_commit_abort_conflict(self):
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.commit("T1")
        with pytest.raises(HistoryError):
            h.abort("T1")

    def test_reads_from_latest_writer(self):
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.write("T2", "x")
        h.read("T3", "x")
        assert h.reads_from() == [("T3", "T2", "x")]

    def test_reads_from_ignores_aborted(self):
        h = SiteHistory("S1")
        h.write("L1", "x")
        h.commit("L1")
        h.write("L2", "x")
        h.abort("L2")
        h2 = SiteHistory("S2")
        # rebuild to interleave: aborted write then read
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.write("L9", "x")
        h.abort("L9")
        h.read("T2", "x")
        assert ("T2", "T1", "x") in h.reads_from()
        assert all(w != "L9" for _, w, _ in h.reads_from())

    def test_reads_from_own_write_excluded(self):
        h = SiteHistory("S1")
        h.write("T1", "x")
        h.read("T1", "x")
        assert h.reads_from() == []


class TestGlobalHistory:
    def test_site_autocreate(self):
        gh = GlobalHistory()
        gh.site("S1").write("T1", "x")
        gh.site("S2").write("T1", "y")
        assert gh.sites_of("T1") == ["S1", "S2"]
        assert gh.transactions() == {"T1"}

    def test_global_reads_from_tagged_with_site(self):
        gh = GlobalHistory()
        gh.site("S1").write("T1", "x")
        gh.site("S1").read("T2", "x")
        gh.site("S2").write("T3", "y")
        gh.site("S2").read("T2", "y")
        assert gh.reads_from() == [
            ("T2", "T1", "x", "S1"),
            ("T2", "T3", "y", "S2"),
        ]
