"""Property-based tests: minimal representations and path inclusion.

Invariants of the Section-5 machinery on random multi-site SGs:

* every minimal representation is a connected chain from src to dst whose
  segments are genuine local paths;
* all minimal representations of a path have the same length, and no
  representation of the path can be shorter (cross-checked against the
  segment-graph BFS distance);
* ``path_includes`` agrees with membership in the enumerated minimal
  representations;
* the segment graph's transitive-closure construction agrees with naive
  per-site DFS reachability.
"""

from hypothesis import given, settings, strategies as st

from repro.sg import GlobalSG, global_path_exists, minimal_representations, path_includes
from repro.sg.paths import SegmentGraph


NODES = [f"N{i}" for i in range(6)]


@st.composite
def random_gsg(draw):
    n_sites = draw(st.integers(min_value=1, max_value=3))
    gsg = GlobalSG()
    for s in range(n_sites):
        sg = gsg.site(f"S{s}")
        edges = draw(st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=10,
        ))
        for a, b in edges:
            if a != b:
                sg.add_edge(a, b)
        for node in NODES[:3]:
            sg.add_node(node)
    return gsg


def naive_reachable(sg, src, dst):
    seen, stack = set(), [src]
    while stack:
        node = stack.pop()
        for succ in sg.successors(node):
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


@settings(max_examples=200, deadline=None)
@given(random_gsg())
def test_segment_graph_matches_naive_reachability(gsg):
    graph = SegmentGraph(gsg)
    for site_id, sg in gsg.locals.items():
        for src in sg.nodes:
            for dst in sg.nodes:
                if src == dst:
                    continue
                has = site_id in graph.sites_for(src, dst)
                assert has == naive_reachable(sg, src, dst)


@settings(max_examples=150, deadline=None)
@given(random_gsg(), st.sampled_from(NODES), st.sampled_from(NODES))
def test_minimal_representations_are_valid_chains(gsg, src, dst):
    reps = minimal_representations(gsg, src, dst)
    if not reps:
        if src != dst:
            assert not global_path_exists(gsg, src, dst)
        return
    graph = SegmentGraph(gsg)
    lengths = {len(rep) for rep in reps}
    assert len(lengths) == 1, "minimal representations differ in length"
    expected = graph.distance(src, dst)
    assert lengths == {expected}
    for rep in reps:
        assert rep[0].src == src
        assert rep[-1].dst == dst
        for seg, nxt in zip(rep, rep[1:]):
            assert seg.dst == nxt.src
        for seg in rep:
            assert seg.sites, "segment without a realizing site"
            for site_id in seg.sites:
                assert naive_reachable(
                    gsg.locals[site_id], seg.src, seg.dst
                )


@settings(max_examples=150, deadline=None)
@given(random_gsg(), st.sampled_from(NODES), st.sampled_from(NODES))
def test_path_includes_agrees_with_enumeration(gsg, src, dst):
    if src == dst:
        return
    reps = minimal_representations(gsg, src, dst)
    on_reps = {
        node
        for rep in reps
        for seg in rep
        for node in (seg.src, seg.dst)
    }
    for node in NODES:
        included = path_includes(gsg, src, dst, node)
        assert included == (node in on_reps), (
            f"includes({node}) = {included}, enumeration says "
            f"{node in on_reps}"
        )
