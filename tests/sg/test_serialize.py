"""Unit tests for history JSON serialization."""

import pytest

from repro.errors import HistoryError
from repro.harness import System, SystemConfig
from repro.sg import GlobalHistory, GlobalSG, find_regular_cycle
from repro.sg.serialize import (
    dump_history,
    history_from_dict,
    history_to_dict,
    load_history,
)
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def sample_history():
    history = GlobalHistory()
    s1 = history.site("S1")
    s1.write("T1", "x")
    s1.read("T2", "x")
    s1.commit("T1")
    s1.commit("T2")
    s2 = history.site("S2")
    s2.write("T1", "y")
    s2.abort("T1")
    return history


def test_roundtrip_preserves_everything():
    original = sample_history()
    rebuilt = history_from_dict(history_to_dict(original))
    assert history_to_dict(rebuilt) == history_to_dict(original)
    assert rebuilt.sites["S1"].committed == {"T1", "T2"}
    assert rebuilt.sites["S2"].aborted == {"T1"}
    assert [op.seq for op in rebuilt.sites["S1"].ops] == [0, 1]


def test_file_roundtrip(tmp_path):
    path = tmp_path / "history.json"
    dump_history(sample_history(), str(path))
    rebuilt = load_history(str(path))
    assert history_to_dict(rebuilt) == history_to_dict(sample_history())


def test_sg_verdict_survives_roundtrip(tmp_path):
    """The whole point: a violation found in a run can be re-analyzed from
    the saved file."""
    system = System(SystemConfig(n_sites=2))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("set", "k0", {"value": "d"})]),
        SubtxnSpec("S2", [SemanticOp("set", "k0", {"value": "d"})],
                   vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(4.2)
        yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [SemanticOp("set", "k0", {"value": "t2"})]),
            SubtxnSpec("S1", [SemanticOp("set", "k0", {"value": "t2"})]),
        ]))

    system.env.process(submit_t2())
    system.env.run()
    live_cycle = find_regular_cycle(system.global_sg())

    path = tmp_path / "trace.json"
    dump_history(system.global_history(), str(path))
    replayed = load_history(str(path))
    replayed_cycle = find_regular_cycle(GlobalSG.from_history(replayed))
    assert replayed_cycle == live_cycle


def test_malformed_inputs_rejected():
    with pytest.raises(HistoryError):
        history_from_dict({})
    with pytest.raises(HistoryError):
        history_from_dict({"sites": {"S1": {"ops": [["T1", "w"]]}}})
    with pytest.raises(HistoryError):
        history_from_dict({"sites": {"S1": {"ops": [["T1", "??", "x"]]}}})
