"""Unit tests for active-wrt, predicates A1-A4, S1/S2, and C1/C2."""

from repro.sg import (
    GlobalSG,
    active_wrt,
    cycle_condition_c1,
    cycle_condition_c2,
    predicate_a1,
    predicate_a2,
    predicate_a3,
    predicate_a4,
    stratification_s1,
    stratification_s2,
)


def fig1a() -> GlobalSG:
    """The canonical regular cycle: T2 -> CT1 @S1, CT1 -> T2 @S2."""
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T2", "CT1")
    gsg.site("S2").add_edge("CT1", "T2")
    # T1 executed at both sites (its compensation did too).
    gsg.site("S1").add_edge("T1", "CT1")
    gsg.site("S2").add_edge("T1", "CT1")
    return gsg


def stratified_s1() -> GlobalSG:
    """T2 consistently after CT1 everywhere (A1 shape)."""
    gsg = GlobalSG()
    gsg.site("S1").add_path("T1", "CT1", "T2")
    gsg.site("S2").add_path("T1", "CT1", "T2")
    return gsg


def stratified_before() -> GlobalSG:
    """T2 consistently before CT1, never after T1 (A2/A4 shape)."""
    gsg = GlobalSG()
    gsg.site("S1").add_edge("T2", "CT1")
    gsg.site("S1").add_edge("T1", "CT1")
    gsg.site("S2").add_edge("T2", "CT1")
    gsg.site("S2").add_edge("T1", "CT1")
    return gsg


class TestActiveWrt:
    def test_active_when_path_to_ct_and_no_tj_ti_path(self):
        gsg = fig1a()
        assert active_wrt(gsg, "T1", "T2")

    def test_not_active_without_ct_connection(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "T2")
        assert not active_wrt(gsg, "T1", "T2")

    def test_not_active_when_tj_precedes_ti(self):
        gsg = GlobalSG()
        # T2 -> T1 -> CT1: T2 is connected to CT1, but T2 -> T1 exists.
        gsg.site("S1").add_path("T2", "T1", "CT1")
        assert not active_wrt(gsg, "T1", "T2")

    def test_requires_common_site(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "CT1")
        gsg.site("S2").add_edge("T2", "CT9")
        assert not active_wrt(gsg, "T1", "T2")


class TestPredicates:
    def test_a1_holds_when_ti_cti_tj_everywhere(self):
        gsg = stratified_s1()
        assert predicate_a1(gsg, "T1", "T2")

    def test_a1_fails_when_some_site_lacks_path(self):
        gsg = stratified_s1()
        gsg.site("S3").add_edge("T2", "CT9")  # T2 appears without T1 -> CT1 -> T2
        assert not predicate_a1(gsg, "T1", "T2")

    def test_a2_holds_when_tj_precedes_ct_everywhere(self):
        gsg = stratified_before()
        assert predicate_a2(gsg, "T1", "T2")

    def test_a2_requires_path_avoiding_ti(self):
        gsg = GlobalSG()
        # Only path T2 -> CT1 passes through T1.
        gsg.site("S1").add_path("T2", "T1", "CT1")
        assert not predicate_a2(gsg, "T1", "T2")

    def test_a3_vacuous_when_unconnected(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "X1")
        gsg.site("S1").add_edge("T2", "X2")
        assert predicate_a3(gsg, "T1", "T2")

    def test_a3_enforced_when_connected(self):
        gsg = stratified_s1()
        assert predicate_a3(gsg, "T1", "T2")
        bad = GlobalSG()
        bad.site("S1").add_edge("T2", "T1")  # connected but wrong shape
        bad.site("S1").add_edge("T1", "CT1")
        assert not predicate_a3(bad, "T1", "T2")

    def test_a4_holds_for_tj_before_ct(self):
        gsg = stratified_before()
        assert predicate_a4(gsg, "T1", "T2")

    def test_a4_fails_when_ct_precedes_tj(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "CT1")
        gsg.site("S1").add_edge("CT1", "T2")
        assert not predicate_a4(gsg, "T1", "T2")


class TestStratificationProperties:
    def test_s1_holds_for_consistent_after_ordering(self):
        assert stratification_s1(stratified_s1())

    def test_s1_and_s2_fail_on_fig1a(self):
        gsg = fig1a()
        assert not stratification_s1(gsg)
        assert not stratification_s2(gsg)

    def test_s2_holds_for_consistent_before_ordering(self):
        assert stratification_s2(stratified_before())

    def test_vacuously_true_without_active_pairs(self):
        gsg = GlobalSG()
        gsg.site("S1").add_edge("T1", "T2")
        assert stratification_s1(gsg)
        assert stratification_s2(gsg)


class TestCycleConditions:
    def test_fig1a_satisfies_c1_and_c2(self):
        gsg = fig1a()
        assert cycle_condition_c1(gsg)
        assert cycle_condition_c2(gsg)

    def test_clean_history_fails_conditions(self):
        gsg = stratified_s1()
        assert not cycle_condition_c1(gsg)
        gsg2 = stratified_before()
        assert not cycle_condition_c2(gsg2)
