"""Property-based tests: compensation invariants.

* Semantic roundtrip: applying a forward operation and then its registered
  inverse restores the original value, for every compensatable action and
  any starting value.
* Full-transaction roundtrip: locally commit a random update sequence, run
  the compensation, and the written keys are back to their initial values —
  even with unrelated intervening commits on *other* keys (semantic undo
  does not clobber them).
* Theorem 2's precondition: the compensation's write set always covers the
  forward write set.
"""

from hypothesis import given, settings, strategies as st

from repro.compensation import CompensationExecutor, standard_registry
from repro.sim import Environment
from repro.txn import SemanticOp, Site, WriteOp


AMOUNTS = st.integers(min_value=1, max_value=50)
VALUES = st.integers(min_value=-1000, max_value=1000)

semantic_op = st.one_of(
    st.builds(
        lambda k, a: SemanticOp("deposit", k, {"amount": a}),
        st.sampled_from(["x", "y"]), AMOUNTS,
    ),
    st.builds(
        lambda k, a: SemanticOp("withdraw", k, {"amount": a}),
        st.sampled_from(["x", "y"]), AMOUNTS,
    ),
    st.builds(
        lambda k: SemanticOp("increment", k), st.sampled_from(["x", "y"]),
    ),
    st.builds(
        lambda k, c: SemanticOp("reserve", k, {"count": c}),
        st.sampled_from(["x", "y"]), st.integers(min_value=1, max_value=5),
    ),
)

any_op = st.one_of(
    semantic_op,
    st.builds(
        lambda k, v: WriteOp(k, v), st.sampled_from(["x", "y", "z"]), VALUES,
    ),
)


@settings(max_examples=200, deadline=None)
@given(
    st.sampled_from(["deposit", "withdraw", "increment", "decrement",
                     "reserve", "cancel", "set", "insert"]),
    VALUES,
    AMOUNTS,
)
def test_semantic_roundtrip_single_op(name, start, amount):
    registry = standard_registry()
    params = {
        "deposit": {"amount": amount}, "withdraw": {"amount": amount},
        "reserve": {"count": amount}, "cancel": {"count": amount},
        "set": {"value": amount}, "insert": {"value": amount},
        "increment": {}, "decrement": {},
    }[name]
    op = SemanticOp(name, "k", params)
    initial = None if name == "insert" else start
    after = registry.apply(op, initial)
    inverse = registry.invert(op, initial)
    assert registry.apply(inverse, after) == initial


@settings(max_examples=100, deadline=None)
@given(
    st.lists(any_op, min_size=1, max_size=8),
    st.dictionaries(st.sampled_from(["x", "y", "z"]), VALUES, min_size=3),
)
def test_transaction_roundtrip_restores_written_keys(ops, initial):
    env = Environment()
    site = Site(env, "S1")
    site.load(dict(initial))

    def forward():
        site.ltm.begin("T1")
        yield from site.ltm.run_ops("T1", ops)
        site.ltm.local_commit("T1")

    env.run(env.process(forward()))
    executor = CompensationExecutor(site)
    written = {op.key for op in ops}
    # Theorem 2 precondition: compensation writes cover forward writes.
    assert {op.key for op in executor.build_ops("T1")} >= written
    env.run(env.process(executor.run("T1")))
    for key in written:
        assert site.store.get_or(key) == initial.get(key), key
    # Untouched keys untouched.
    for key, value in initial.items():
        if key not in written:
            assert site.store.get(key) == value


@settings(max_examples=60, deadline=None)
@given(st.lists(semantic_op, min_size=1, max_size=5), AMOUNTS)
def test_semantic_compensation_preserves_interleaved_updates(ops, delta):
    """A commutative update by another transaction between local commit and
    compensation survives the semantic undo (the whole point of
    compensation over state restoration)."""
    env = Environment()
    site = Site(env, "S1")
    site.load({"x": 100, "y": 100})

    def forward():
        site.ltm.begin("T1")
        yield from site.ltm.run_ops("T1", ops)
        site.ltm.local_commit("T1")

    env.run(env.process(forward()))

    def bystander():
        site.ltm.begin("L1")
        yield from site.ltm.run_ops(
            "L1", [SemanticOp("deposit", "x", {"amount": delta})]
        )
        site.ltm.commit("L1")

    env.run(env.process(bystander()))
    executor = CompensationExecutor(site)
    env.run(env.process(executor.run("T1")))
    assert site.store.get("x") == 100 + delta
    assert site.store.get("y") == 100
