"""Unit tests for the compensation executor."""

from repro.compensation import CompensationExecutor
from repro.locking import LockMode
from repro.sim import Environment
from repro.txn import ReadOp, SemanticOp, Site, WriteOp
from repro.txn.transaction import TxnStatus


def make_site():
    env = Environment()
    return env, Site(env, "S1")


def locally_commit_forward(env, site, txn_id, ops):
    def proc():
        site.ltm.begin(txn_id)
        yield from site.ltm.run_ops(txn_id, ops)
        site.ltm.local_commit(txn_id)

    env.run(env.process(proc()))


def test_semantic_compensation_restores_balance_semantically():
    env, site = make_site()
    site.load({"acct": 100})
    locally_commit_forward(
        env, site, "T1", [SemanticOp("deposit", "acct", {"amount": 50})]
    )
    # Another transaction deposits in between: compensation must not clobber.
    locally_commit_forward(
        env, site, "T2", [SemanticOp("deposit", "acct", {"amount": 7})]
    )
    executor = CompensationExecutor(site)
    ct_id = env.run(env.process(executor.run("T1")))
    assert ct_id == "CT1"
    # Semantic undo: only T1's 50 removed, T2's 7 intact.
    assert site.store.get("acct") == 107
    assert site.ltm.status["T1"] is TxnStatus.COMPENSATED
    assert "CT1" in site.history.committed
    assert executor.stats.completed == 1


def test_generic_compensation_uses_before_images():
    env, site = make_site()
    site.load({"x": 1, "y": 2})
    locally_commit_forward(env, site, "T1", [WriteOp("x", 10), WriteOp("y", 20)])
    executor = CompensationExecutor(site)
    env.run(env.process(executor.run("T1")))
    assert site.store.get("x") == 1
    assert site.store.get("y") == 2


def test_mixed_ops_semantic_preferred_generic_fallback():
    env, site = make_site()
    site.load({"acct": 100, "note": "old"})
    locally_commit_forward(env, site, "T1", [
        SemanticOp("deposit", "acct", {"amount": 5}),
        WriteOp("note", "new"),
    ])
    executor = CompensationExecutor(site)
    ops = executor.build_ops("T1")
    kinds = {op.key: type(op).__name__ for op in ops}
    assert kinds == {"acct": "SemanticOp", "note": "WriteOp"}
    env.run(env.process(executor.run("T1")))
    assert site.store.get("acct") == 100
    assert site.store.get("note") == "old"


def test_compensation_covers_all_written_keys():
    """Theorem 2 precondition: CT writes >= T writes."""
    env, site = make_site()
    locally_commit_forward(env, site, "T1", [
        WriteOp("a", 1), WriteOp("b", 2), SemanticOp("increment", "c"),
    ])
    executor = CompensationExecutor(site)
    assert {op.key for op in executor.build_ops("T1")} == {"a", "b", "c"}


def test_compensation_runs_under_its_own_locks():
    env, site = make_site()
    site.load({"x": 1})
    locally_commit_forward(env, site, "T1", [WriteOp("x", 5)])

    # A reader holds an S lock on x; compensation must wait for it.
    events = []

    def reader():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", ReadOp("x"))
        yield env.timeout(10)
        site.ltm.commit("L1")
        events.append(("reader-done", env.now))

    def compensate():
        executor = CompensationExecutor(site)
        yield env.timeout(1)
        yield from executor.run("T1")
        events.append(("compensated", env.now))

    env.process(reader())
    env.process(compensate())
    env.run()
    assert events == [("reader-done", 10.0), ("compensated", 10.0)]


def test_compensation_retries_after_deadlock_victimization():
    env, site = make_site()
    site.load({"x": 1, "y": 1})
    locally_commit_forward(env, site, "T9", [WriteOp("x", 5), WriteOp("y", 5)])

    executor = CompensationExecutor(site, retry_delay=2.0)
    done = []

    # L1 locks y then x; the compensation (ordered x then y by the WAL
    # chain, newest first -> y then x... build order is newest-first) will
    # collide.  Force a deadlock by making L1 grab the keys in the opposite
    # order with a pause.
    comp_ops = executor.build_ops("T9")
    first_key = comp_ops[0].key
    second_key = comp_ops[1].key

    def blocker():
        site.ltm.begin("L1")
        yield from site.ltm.execute("L1", WriteOp(second_key, 7))
        yield env.timeout(5)
        yield from site.ltm.execute("L1", WriteOp(first_key, 7))
        site.ltm.commit("L1")

    def compensate():
        yield env.timeout(1)
        yield from executor.run("T9")
        done.append(env.now)

    env.process(blocker())
    env.process(compensate())
    env.run()
    # Persistence of compensation: despite losing a deadlock, it completed.
    assert done, "compensation must eventually commit"
    assert executor.stats.retries >= 1
    assert site.store.get("x") == 1
    assert site.store.get("y") == 1
    # L1 won the deadlock and committed its writes before compensation: the
    # final values must reflect compensation last (it restored 1).
    assert "CT9" in site.history.committed
