"""Property: compensation round-trips restore the before-value.

For every compensatable action in the standard repertoire,
``apply(invert(op, before), apply(op, before))`` must equal ``before`` —
this is the executable counterpart of the static Theorem-2 coverage check
in ``repro.analysis.repertoire``: the registered counter-task really does
undo the forward task's effect on its key.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compensation import standard_registry
from repro.txn import SemanticOp

REGISTRY = standard_registry()

_values = st.one_of(
    st.none(),
    st.integers(),
    st.text(max_size=8),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
)

#: per-action (params, before) strategies.  ``insert`` creates an item, so
#: its legitimate before-state is "absent" (None); the additive actions
#: treat None as 0, so a None before-value is *not* restored bit-for-bit —
#: their domain is numeric state.
STRATEGIES = {
    "deposit": (st.fixed_dictionaries({"amount": st.integers()}), st.integers()),
    "withdraw": (st.fixed_dictionaries({"amount": st.integers()}), st.integers()),
    "increment": (st.just({}), st.integers()),
    "decrement": (st.just({}), st.integers()),
    "insert": (st.fixed_dictionaries({"value": _values}), st.none()),
    "delete": (st.just({}), _values),
    "set": (st.fixed_dictionaries({"value": _values}), _values),
    "reserve": (
        st.one_of(st.just({}), st.fixed_dictionaries({"count": st.integers()})),
        st.integers(),
    ),
    "cancel": (
        st.one_of(st.just({}), st.fixed_dictionaries({"count": st.integers()})),
        st.integers(),
    ),
}

COMPENSATABLE = [a.name for a in REGISTRY.actions() if a.compensatable]


def test_every_compensatable_action_has_a_strategy():
    # A new repertoire entry without a round-trip strategy fails here,
    # keeping the property exhaustive as the repertoire grows.
    assert sorted(STRATEGIES) == COMPENSATABLE


@pytest.mark.parametrize("name", COMPENSATABLE)
@settings(max_examples=60)
@given(data=st.data())
def test_apply_invert_apply_restores_before(name, data):
    params_st, before_st = STRATEGIES[name]
    params = data.draw(params_st)
    before = data.draw(before_st)

    op = SemanticOp(name, "k", params)
    after = REGISTRY.apply(op, before)
    compensation = REGISTRY.invert(op, before)
    restored = REGISTRY.apply(compensation, after)

    assert restored == before
    # the compensating op targets the same key and a registered action
    assert compensation.key == op.key
    assert REGISTRY.known(compensation.name)
    assert compensation.name == REGISTRY.get(name).inverse_name


@pytest.mark.parametrize("name", COMPENSATABLE)
def test_declared_inverse_matches_constructed_inverse(name):
    # Static declaration (inverse_name) agrees with the constructor for a
    # concrete draw — the lint checks the same thing over workload specs.
    params, before = {
        "deposit": ({"amount": 7}, 10),
        "withdraw": ({"amount": 7}, 10),
        "increment": ({}, 3),
        "decrement": ({}, 3),
        "insert": ({"value": "row"}, None),
        "delete": ({}, "row"),
        "set": ({"value": "new"}, "old"),
        "reserve": ({"count": 2}, 5),
        "cancel": ({"count": 2}, 5),
    }[name]
    compensation = REGISTRY.invert(SemanticOp(name, "k", params), before)
    assert compensation.name == REGISTRY.get(name).inverse_name
