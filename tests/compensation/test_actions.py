"""Unit tests for the semantic-action registry."""

import pytest

from repro.compensation import ActionRegistry, SemanticAction, standard_registry
from repro.errors import NotCompensatable, UnknownAction
from repro.txn import SemanticOp


@pytest.fixture
def registry():
    return standard_registry()


class TestStandardActions:
    def test_deposit_withdraw_roundtrip(self, registry):
        op = SemanticOp("deposit", "acct", {"amount": 30})
        after = registry.apply(op, 100)
        assert after == 130
        inverse = registry.invert(op, 100)
        assert inverse.name == "withdraw"
        assert registry.apply(inverse, after) == 100

    def test_deposit_on_missing_account_starts_at_zero(self, registry):
        assert registry.apply(SemanticOp("deposit", "a", {"amount": 5}), None) == 5

    def test_increment_decrement(self, registry):
        inc = SemanticOp("increment", "c")
        assert registry.apply(inc, 7) == 8
        inv = registry.invert(inc, 7)
        assert inv.name == "decrement"
        assert registry.apply(inv, 8) == 7

    def test_insert_delete_inverse_restores_value(self, registry):
        ins = SemanticOp("insert", "row", {"value": {"name": "alice"}})
        assert registry.apply(ins, None) == {"name": "alice"}
        assert registry.invert(ins, None).name == "delete"
        dele = SemanticOp("delete", "row")
        assert registry.apply(dele, {"name": "alice"}) is None
        undelete = registry.invert(dele, {"name": "alice"})
        assert undelete.name == "insert"
        assert undelete.params == {"value": {"name": "alice"}}

    def test_set_inverse_uses_before_image(self, registry):
        op = SemanticOp("set", "k", {"value": "new"})
        inverse = registry.invert(op, "old")
        assert inverse.name == "set"
        assert inverse.params == {"value": "old"}

    def test_reserve_cancel_with_count(self, registry):
        op = SemanticOp("reserve", "flight", {"count": 3})
        assert registry.apply(op, 10) == 13
        inverse = registry.invert(op, 10)
        assert (inverse.name, inverse.params) == ("cancel", {"count": 3})

    def test_dispense_is_real_action(self, registry):
        op = SemanticOp("dispense", "atm", {"amount": 100})
        assert registry.apply(op, 500) == 400
        assert not registry.is_compensatable(op)
        with pytest.raises(NotCompensatable):
            registry.invert(op, 500)


class TestRegistry:
    def test_unknown_action_raises(self, registry):
        # UnknownAction is the narrow type; it stays catchable as
        # NotCompensatable for existing callers.
        with pytest.raises(UnknownAction):
            registry.get("teleport")
        with pytest.raises(NotCompensatable):
            registry.get("teleport")
        assert not registry.known("teleport")

    def test_real_action_invert_is_not_unknown(self, registry):
        # dispense is registered — inverting it raises the plain
        # NotCompensatable, never UnknownAction.
        with pytest.raises(NotCompensatable) as exc_info:
            registry.invert(SemanticOp("dispense", "atm", {"amount": 1}), 10)
        assert not isinstance(exc_info.value, UnknownAction)

    def test_names_and_actions_are_sorted(self, registry):
        names = registry.names()
        assert names == sorted(names)
        assert [a.name for a in registry.actions()] == names

    def test_custom_registration(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="double",
            apply=lambda current: current * 2,
            inverse=lambda params, before: ("halve", {}),
        ))
        registry.register(SemanticAction(
            name="halve",
            apply=lambda current: current // 2,
            inverse=lambda params, before: ("double", {}),
        ))
        op = SemanticOp("double", "x")
        assert registry.apply(op, 4) == 8
        assert registry.invert(op, 4).name == "halve"

    def test_semantic_op_hashable(self):
        a = SemanticOp("deposit", "x", {"amount": 1})
        b = SemanticOp("deposit", "x", {"amount": 1})
        assert hash(a) == hash(b)
