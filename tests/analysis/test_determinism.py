"""Family 3: the determinism lint (AST pass, no execution)."""

import textwrap

import pytest

from repro.analysis import analyze_file, analyze_tree, default_root
from repro.analysis.determinism import DEFAULT_ALLOWLIST
from repro.errors import AnalysisError


def lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return analyze_file(path, name)


def rules_of(findings):
    return [f.rule for f in findings]


class TestWallClock:
    def test_time_time_call(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            def stamp():
                return time.time()
        """)
        assert rules_of(findings) == ["determinism/wall-clock"]
        assert findings[0].location == "mod.py:4"

    def test_from_import_alias(self, tmp_path):
        findings = lint_source(tmp_path, """
            from time import time as wall
            def stamp():
                return wall()
        """)
        assert rules_of(findings) == ["determinism/wall-clock"]

    def test_datetime_now(self, tmp_path):
        findings = lint_source(tmp_path, """
            from datetime import datetime
            def stamp():
                return datetime.now()
        """)
        assert rules_of(findings) == ["determinism/wall-clock"]

    def test_uncalled_reference_still_flagged(self, tmp_path):
        # e.g. default_factory=time.time
        findings = lint_source(tmp_path, """
            import time
            CLOCK = time.time
        """)
        assert rules_of(findings) == ["determinism/wall-clock"]

    def test_perf_counter_tolerated_for_budget_accounting(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            def budget():
                return time.perf_counter()
        """)
        assert findings == []


class TestRandomAndEntropy:
    def test_module_level_random(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            def draw():
                return random.randint(1, 6)
        """)
        assert rules_of(findings) == ["determinism/unseeded-random"]

    def test_unseeded_random_instance(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            RNG = random.Random()
        """)
        assert rules_of(findings) == ["determinism/unseeded-random"]

    def test_seeded_random_instance_allowed(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            RNG = random.Random(42)
        """)
        assert findings == []

    def test_os_urandom_and_uuid4(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            import uuid
            def token():
                return os.urandom(8), uuid.uuid4()
        """)
        assert rules_of(findings) == [
            "determinism/entropy", "determinism/entropy",
        ]

    def test_secrets_module(self, tmp_path):
        findings = lint_source(tmp_path, """
            import secrets
            def token():
                return secrets.token_hex(4)
        """)
        assert rules_of(findings) == ["determinism/entropy"]


class TestSetIteration:
    def test_for_over_set_literal(self, tmp_path):
        findings = lint_source(tmp_path, """
            def drain(a, b):
                for item in {a, b}:
                    print(item)
        """)
        assert rules_of(findings) == ["determinism/set-iteration"]

    def test_comprehension_over_set_call(self, tmp_path):
        findings = lint_source(tmp_path, """
            def dedupe(items):
                return [x for x in set(items)]
        """)
        assert rules_of(findings) == ["determinism/set-iteration"]

    def test_sorted_set_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            def dedupe(items):
                for x in sorted(set(items)):
                    print(x)
                return sorted({i for i in items})
        """)
        assert findings == []

    def test_membership_test_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            def member(x, items):
                return x in set(items)
        """)
        assert findings == []


class TestPragmaAndTree:
    def test_pragma_suppresses_line(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            WALL = time.time()  # lint: allow-nondeterminism
            LEAK = time.time()
        """)
        assert len(findings) == 1
        assert findings[0].location == "mod.py:4"

    def test_syntax_error_raises_analysis_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def oops(:\n")
        with pytest.raises(AnalysisError):
            analyze_file(path, "broken.py")

    def test_allowlist_skips_rng(self, tmp_path):
        pkg = tmp_path / "sim"
        pkg.mkdir()
        (pkg / "rng.py").write_text("import random\nX = random.random()\n")
        assert analyze_tree(tmp_path) == []
        assert rules_of(analyze_tree(tmp_path, allowlist=frozenset())) == [
            "determinism/unseeded-random"
        ]

    def test_shipped_source_tree_is_clean(self):
        # The load-bearing assertion: the protocol, sim, and check packages
        # contain none of the forbidden constructs (sim/rng.py allowlisted).
        assert analyze_tree(default_root()) == []

    def test_default_allowlist_names_the_rng_wrapper(self):
        assert "sim/rng.py" in DEFAULT_ALLOWLIST
