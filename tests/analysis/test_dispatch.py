"""Family 4: handler exhaustiveness over the MsgType vocabulary."""

import shutil

import pytest

from repro.analysis import (
    analyze_dispatch,
    analyze_runtime_dispatch,
    default_root,
)
from repro.errors import AnalysisError
from repro.net.message import MsgType


def repo_paths():
    root = default_root()
    return (
        root / "net" / "message.py",
        root / "commit" / "coordinator.py",
        root / "commit" / "participant.py",
    )


def runtime_paths():
    root = default_root()
    return repo_paths() + (
        root / "rt" / "daemon.py",
        root / "rt" / "client.py",
    )


def participant_surfaces():
    """The competitor engines' participant-side dispatch declarations."""
    root = default_root()
    return (
        (root / "protocols" / "paxos.py", "PaxosParticipant", "_HANDLERS"),
        (root / "protocols" / "short.py", "ShortParticipant", "_HANDLERS"),
        (root / "protocols" / "acceptor.py", "Acceptor", "_HANDLERS"),
    )


def coordinator_surfaces():
    root = default_root()
    return (
        (root / "protocols" / "paxos.py", "PaxosCommitCoordinator",
         "_COLLECTS"),
    )


def all_surfaces():
    return participant_surfaces() + coordinator_surfaces()


def copied_paths(tmp_path):
    out = []
    for src in repo_paths():
        dst = tmp_path / src.name
        shutil.copy(src, dst)
        out.append(dst)
    return out


def copied_runtime_paths(tmp_path):
    out = []
    for src in runtime_paths():
        dst = tmp_path / src.name
        shutil.copy(src, dst)
        out.append(dst)
    return out


def test_shipped_dispatch_is_exhaustive():
    assert analyze_dispatch(*repo_paths(), extra_surfaces=all_surfaces()) == []


def test_declarations_match_runtime_enum():
    # The AST-read enum members must be the real ones, or the whole
    # analysis is checking a phantom vocabulary.
    from repro.analysis.dispatch import enum_members

    names = {name for name, _ in enum_members(repo_paths()[0])}
    assert names == {m.name for m in MsgType}


def test_missing_participant_handler_is_flagged(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = participant.read_text()
    doctored = text.replace(
        'MsgType.DECISION: "_handle_decision",\n', ""
    )
    assert doctored != text
    participant.write_text(doctored)
    # No extra surfaces: the competitor engines also declare DECISION and
    # would mask the removal.  Without them the Paxos vocabulary is
    # (correctly) unhandled too, so filter for the doctored member.
    findings = analyze_dispatch(message, coordinator, participant)
    assert {f.rule for f in findings} == {"dispatch/missing-handler"}
    matched = [f for f in findings if "MsgType.DECISION" in f.message]
    assert len(matched) == 1
    assert matched[0].location.startswith("message.py:")


def test_new_msg_type_without_handler_is_flagged(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = message.read_text()
    doctored = text.replace(
        'ACK = "ACK"', 'ACK = "ACK"\n    INQUIRE = "INQUIRE"'
    )
    assert doctored != text
    message.write_text(doctored)
    findings = analyze_dispatch(
        message, coordinator, participant, extra_surfaces=all_surfaces()
    )
    assert [f.rule for f in findings] == ["dispatch/missing-handler"]
    assert "MsgType.INQUIRE" in findings[0].message


def test_unknown_msg_type_in_declaration(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = coordinator.read_text()
    doctored = text.replace("MsgType.ACK,", "MsgType.ACK,\n        MsgType.NACK,")
    assert doctored != text
    coordinator.write_text(doctored)
    findings = analyze_dispatch(
        message, coordinator, participant, extra_surfaces=all_surfaces()
    )
    assert [f.rule for f in findings] == ["dispatch/unknown-msg-type"]
    assert "MsgType.NACK" in findings[0].message


def test_duplicate_declaration_is_flagged(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = coordinator.read_text()
    doctored = text.replace("MsgType.ACK,", "MsgType.ACK,\n        MsgType.ACK,")
    assert doctored != text
    coordinator.write_text(doctored)
    findings = analyze_dispatch(
        message, coordinator, participant, extra_surfaces=all_surfaces()
    )
    assert [f.rule for f in findings] == ["dispatch/duplicate-handler"]


def test_missing_declaration_is_an_analysis_error(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = participant.read_text()
    doctored = text.replace("_HANDLERS", "_RENAMED")
    participant.write_text(doctored)
    with pytest.raises(AnalysisError):
        analyze_dispatch(message, coordinator, participant)


class TestRuntimeDispatch:
    """The rt daemon/client wire surfaces mirror the sim dispatch tables."""

    def test_shipped_runtime_surfaces_match(self):
        assert analyze_runtime_dispatch(
            *runtime_paths(),
            extra_participant_surfaces=participant_surfaces(),
            extra_coordinator_surfaces=coordinator_surfaces(),
        ) == []

    def test_inbound_literals_match_runtime_objects(self):
        # The AST-read declarations must be what the classes really bind:
        # each _INBOUND is the union over the engines that side hosts.
        from repro.commit.coordinator import Coordinator
        from repro.commit.participant import Participant
        from repro.protocols.acceptor import Acceptor
        from repro.protocols.paxos import (
            PaxosCommitCoordinator,
            PaxosParticipant,
        )
        from repro.protocols.short import ShortParticipant
        from repro.rt.client import NetClient
        from repro.rt.daemon import SiteDaemon

        assert set(SiteDaemon._INBOUND) == (
            set(Participant._HANDLERS)
            | set(PaxosParticipant._HANDLERS)
            | set(ShortParticipant._HANDLERS)
            | set(Acceptor._HANDLERS)
        )
        assert set(NetClient._INBOUND) == (
            set(Coordinator._COLLECTS)
            | set(PaxosCommitCoordinator._COLLECTS)
        )

    def test_daemon_missing_inbound_entry_is_flagged(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        daemon = paths[3]
        text = daemon.read_text()
        doctored = text.replace("MsgType.DECISION,\n", "")
        assert doctored != text
        daemon.write_text(doctored)
        findings = analyze_runtime_dispatch(
            *paths,
            extra_participant_surfaces=participant_surfaces(),
            extra_coordinator_surfaces=coordinator_surfaces(),
        )
        assert [f.rule for f in findings] == ["dispatch/runtime-mismatch"]
        assert "MsgType.DECISION" in findings[0].message
        assert "_HANDLERS union" in findings[0].message

    def test_client_extra_inbound_entry_is_flagged(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        client = paths[4]
        text = client.read_text()
        doctored = text.replace(
            "MsgType.ACK,", "MsgType.ACK, MsgType.DECISION,"
        )
        assert doctored != text
        client.write_text(doctored)
        findings = analyze_runtime_dispatch(
            *paths,
            extra_participant_surfaces=participant_surfaces(),
            extra_coordinator_surfaces=coordinator_surfaces(),
        )
        assert [f.rule for f in findings] == ["dispatch/runtime-mismatch"]
        assert "MsgType.DECISION" in findings[0].message
        assert "silently ignored" in findings[0].message

    def test_unknown_member_in_inbound_is_flagged(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        daemon = paths[3]
        text = daemon.read_text()
        doctored = text.replace(
            "MsgType.DECISION,", "MsgType.DECISION, MsgType.NACK,"
        )
        assert doctored != text
        daemon.write_text(doctored)
        findings = analyze_runtime_dispatch(
            *paths,
            extra_participant_surfaces=participant_surfaces(),
            extra_coordinator_surfaces=coordinator_surfaces(),
        )
        assert "dispatch/unknown-msg-type" in [f.rule for f in findings]

    def test_missing_inbound_declaration_is_an_analysis_error(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        daemon = paths[3]
        daemon.write_text(daemon.read_text().replace("_INBOUND", "_RENAMED"))
        with pytest.raises(AnalysisError):
            analyze_runtime_dispatch(*paths)


class TestEngineRegistry:
    """dispatch/missing-engine: every enum member must be constructible."""

    def test_shipped_registry_is_complete(self):
        from repro.analysis.dispatch import analyze_engines

        assert analyze_engines() == []

    def test_unregistered_member_is_an_error(self):
        from repro.analysis.dispatch import analyze_engines
        from repro.commit.base import CommitScheme
        from repro.protocols import ENGINES

        spec = ENGINES.pop(CommitScheme.SHORT)
        try:
            findings = analyze_engines()
        finally:
            ENGINES[CommitScheme.SHORT] = spec
        assert [f.rule for f in findings] == ["dispatch/missing-engine"]
        assert "SHORT" in findings[0].message
        assert findings[0].severity.name == "ERROR"
