"""Family 4: handler exhaustiveness over the MsgType vocabulary."""

import shutil

import pytest

from repro.analysis import (
    analyze_dispatch,
    analyze_runtime_dispatch,
    default_root,
)
from repro.errors import AnalysisError
from repro.net.message import MsgType


def repo_paths():
    root = default_root()
    return (
        root / "net" / "message.py",
        root / "commit" / "coordinator.py",
        root / "commit" / "participant.py",
    )


def runtime_paths():
    root = default_root()
    return repo_paths() + (
        root / "rt" / "daemon.py",
        root / "rt" / "client.py",
    )


def copied_paths(tmp_path):
    out = []
    for src in repo_paths():
        dst = tmp_path / src.name
        shutil.copy(src, dst)
        out.append(dst)
    return out


def copied_runtime_paths(tmp_path):
    out = []
    for src in runtime_paths():
        dst = tmp_path / src.name
        shutil.copy(src, dst)
        out.append(dst)
    return out


def test_shipped_dispatch_is_exhaustive():
    assert analyze_dispatch(*repo_paths()) == []


def test_declarations_match_runtime_enum():
    # The AST-read enum members must be the real ones, or the whole
    # analysis is checking a phantom vocabulary.
    from repro.analysis.dispatch import enum_members

    names = {name for name, _ in enum_members(repo_paths()[0])}
    assert names == {m.name for m in MsgType}


def test_missing_participant_handler_is_flagged(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = participant.read_text()
    doctored = text.replace(
        'MsgType.DECISION: "_handle_decision",\n', ""
    )
    assert doctored != text
    participant.write_text(doctored)
    findings = analyze_dispatch(message, coordinator, participant)
    assert [f.rule for f in findings] == ["dispatch/missing-handler"]
    finding = findings[0]
    assert "MsgType.DECISION" in finding.message
    assert finding.location.startswith("message.py:")


def test_new_msg_type_without_handler_is_flagged(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = message.read_text()
    doctored = text.replace(
        'ACK = "ACK"', 'ACK = "ACK"\n    INQUIRE = "INQUIRE"'
    )
    assert doctored != text
    message.write_text(doctored)
    findings = analyze_dispatch(message, coordinator, participant)
    assert [f.rule for f in findings] == ["dispatch/missing-handler"]
    assert "MsgType.INQUIRE" in findings[0].message


def test_unknown_msg_type_in_declaration(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = coordinator.read_text()
    doctored = text.replace("MsgType.ACK,", "MsgType.ACK,\n        MsgType.NACK,")
    assert doctored != text
    coordinator.write_text(doctored)
    findings = analyze_dispatch(message, coordinator, participant)
    assert [f.rule for f in findings] == ["dispatch/unknown-msg-type"]
    assert "MsgType.NACK" in findings[0].message


def test_duplicate_declaration_is_flagged(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = coordinator.read_text()
    doctored = text.replace("MsgType.ACK,", "MsgType.ACK,\n        MsgType.ACK,")
    assert doctored != text
    coordinator.write_text(doctored)
    findings = analyze_dispatch(message, coordinator, participant)
    assert [f.rule for f in findings] == ["dispatch/duplicate-handler"]


def test_missing_declaration_is_an_analysis_error(tmp_path):
    message, coordinator, participant = copied_paths(tmp_path)
    text = participant.read_text()
    doctored = text.replace("_HANDLERS", "_RENAMED")
    participant.write_text(doctored)
    with pytest.raises(AnalysisError):
        analyze_dispatch(message, coordinator, participant)


class TestRuntimeDispatch:
    """The rt daemon/client wire surfaces mirror the sim dispatch tables."""

    def test_shipped_runtime_surfaces_match(self):
        assert analyze_runtime_dispatch(*runtime_paths()) == []

    def test_inbound_literals_match_runtime_objects(self):
        # The AST-read declarations must be what the classes really bind.
        from repro.commit.coordinator import Coordinator
        from repro.commit.participant import Participant
        from repro.rt.client import NetClient
        from repro.rt.daemon import SiteDaemon

        assert set(SiteDaemon._INBOUND) == set(Participant._HANDLERS)
        assert set(NetClient._INBOUND) == set(Coordinator._COLLECTS)

    def test_daemon_missing_inbound_entry_is_flagged(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        daemon = paths[3]
        text = daemon.read_text()
        doctored = text.replace("MsgType.DECISION)", ")")
        assert doctored != text
        daemon.write_text(doctored)
        findings = analyze_runtime_dispatch(*paths)
        assert [f.rule for f in findings] == ["dispatch/runtime-mismatch"]
        assert "MsgType.DECISION" in findings[0].message
        assert "Participant._HANDLERS" in findings[0].message

    def test_client_extra_inbound_entry_is_flagged(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        client = paths[4]
        text = client.read_text()
        doctored = text.replace(
            "MsgType.ACK)", "MsgType.ACK, MsgType.DECISION)"
        )
        assert doctored != text
        client.write_text(doctored)
        findings = analyze_runtime_dispatch(*paths)
        assert [f.rule for f in findings] == ["dispatch/runtime-mismatch"]
        assert "MsgType.DECISION" in findings[0].message
        assert "silently ignored" in findings[0].message

    def test_unknown_member_in_inbound_is_flagged(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        daemon = paths[3]
        text = daemon.read_text()
        doctored = text.replace(
            "MsgType.DECISION)", "MsgType.DECISION, MsgType.NACK)"
        )
        assert doctored != text
        daemon.write_text(doctored)
        findings = analyze_runtime_dispatch(*paths)
        assert "dispatch/unknown-msg-type" in [f.rule for f in findings]

    def test_missing_inbound_declaration_is_an_analysis_error(self, tmp_path):
        paths = copied_runtime_paths(tmp_path)
        daemon = paths[3]
        daemon.write_text(daemon.read_text().replace("_INBOUND", "_RENAMED"))
        with pytest.raises(AnalysisError):
            analyze_runtime_dispatch(*paths)
