"""Family 1: repertoire/compensation soundness (inverse closure, Theorem 2
write coverage, Section 2 real-action reachability)."""

import pytest

from repro.analysis import analyze_registry, analyze_workloads
from repro.analysis.findings import Severity
from repro.compensation import (
    ActionRegistry,
    SemanticAction,
    standard_registry,
)
from repro.txn import GlobalTxnSpec, ReadOp, SemanticOp, SubtxnSpec, WriteOp
from repro.workload import standard_scenarios


def rules_of(findings):
    return [f.rule for f in findings]


class TestRegistryClosure:
    def test_standard_registry_is_clean(self):
        assert analyze_registry(standard_registry()) == []

    def test_missing_inverse_is_flagged_with_action_pointer(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="launch",
            apply=lambda current: current,
            inverse=lambda params, before: ("recall", {}),
            inverse_name="recall",  # never registered
        ))
        findings = analyze_registry(registry)
        assert rules_of(findings) == ["repertoire/unknown-inverse"]
        assert findings[0].location == "registry:launch"
        assert "recall" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_deleted_inverse_declaration_is_inconsistent(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="deposit",
            apply=lambda current, amount: (current or 0) + amount,
            inverse=lambda params, before: (
                "withdraw", {"amount": params["amount"]}
            ),
            inverse_name=None,  # constructor present, declaration deleted
        ))
        findings = analyze_registry(registry)
        assert rules_of(findings) == ["repertoire/inconsistent-inverse"]

    def test_open_chain_two_hops_out(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="a", apply=lambda c: c,
            inverse=lambda p, b: ("b", {}), inverse_name="b",
        ))
        registry.register(SemanticAction(
            name="b", apply=lambda c: c,
            inverse=lambda p, b: ("ghost", {}), inverse_name="ghost",
        ))
        findings = analyze_registry(registry)
        # a's chain breaks transitively at ghost; b's directly.
        assert sorted(rules_of(findings)) == [
            "repertoire/open-inverse-chain",
            "repertoire/unknown-inverse",
        ]
        by_rule = {f.rule: f for f in findings}
        assert by_rule["repertoire/open-inverse-chain"].location == "registry:a"
        assert "a -> b -> ghost" in by_rule["repertoire/open-inverse-chain"].message

    def test_closed_two_cycle_is_sound(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="double", apply=lambda c: c * 2,
            inverse=lambda p, b: ("halve", {}), inverse_name="halve",
        ))
        registry.register(SemanticAction(
            name="halve", apply=lambda c: c // 2,
            inverse=lambda p, b: ("double", {}), inverse_name="double",
        ))
        assert analyze_registry(registry) == []

    def test_chain_ending_at_real_action_is_closed(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="fire", apply=lambda c: c, inverse=None,
        ))
        registry.register(SemanticAction(
            name="arm", apply=lambda c: c,
            inverse=lambda p, b: ("fire", {}), inverse_name="fire",
        ))
        assert analyze_registry(registry) == []


@pytest.fixture
def registry():
    return standard_registry()


def one_txn(ops, *, real_action=False, name="w"):
    return {name: [GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", ops, real_action=real_action),
        SubtxnSpec("S2", [SemanticOp("deposit", "k9", {"amount": 1})]),
    ])]}


class TestWorkloadCoverage:
    def test_standard_scenarios_are_clean(self, registry):
        assert analyze_workloads(registry, standard_scenarios()) == []

    def test_unknown_action_flagged(self, registry):
        findings = analyze_workloads(
            registry, one_txn([SemanticOp("teleport", "k0")])
        )
        rules = rules_of(findings)
        assert "repertoire/unknown-action" in rules
        # the unknown write is also uncovered (Theorem 2)
        assert "repertoire/uncovered-write" in rules
        assert findings[0].location == "workload:w/T1@S1"

    def test_real_action_without_lock_holding_flag(self, registry):
        findings = analyze_workloads(
            registry,
            one_txn([SemanticOp("dispense", "atm", {"amount": 50})]),
        )
        rules = rules_of(findings)
        assert "repertoire/real-action-unlocked" in rules
        assert "repertoire/uncovered-write" in rules
        by_rule = {f.rule: f for f in findings}
        assert "Section 2" in by_rule["repertoire/real-action-unlocked"].anchor
        assert "Theorem 2" in by_rule["repertoire/uncovered-write"].anchor

    def test_real_action_in_lock_holding_subtxn_is_fine(self, registry):
        findings = analyze_workloads(
            registry,
            one_txn(
                [SemanticOp("dispense", "atm", {"amount": 50})],
                real_action=True,
            ),
        )
        assert findings == []

    def test_uncovered_write_lists_the_keys(self, registry):
        findings = analyze_workloads(
            registry, one_txn([SemanticOp("vanish", "k3")])
        )
        uncovered = [
            f for f in findings if f.rule == "repertoire/uncovered-write"
        ]
        assert len(uncovered) == 1
        assert "'k3'" in uncovered[0].message

    def test_generic_writes_covered_by_before_image(self, registry):
        findings = analyze_workloads(
            registry, one_txn([WriteOp("k0", 5), ReadOp("k1")])
        )
        assert findings == []

    def test_inverse_constructor_crash_on_declared_params(self, registry):
        # deposit's inverse requires params["amount"]; a misspelled
        # parameter would only crash at compensation time — after the
        # global ABORT.  The lint catches it statically.
        findings = analyze_workloads(
            registry, one_txn([SemanticOp("deposit", "k0", {"amnt": 5})])
        )
        rules = rules_of(findings)
        assert "repertoire/inverse-constructor-error" in rules

    def test_inverse_name_mismatch(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="push", apply=lambda c: c,
            inverse=lambda p, b: ("drop", {}),  # constructor says drop...
            inverse_name="pop",                 # ...declaration says pop
        ))
        registry.register(SemanticAction(
            name="pop", apply=lambda c: c,
            inverse=lambda p, b: ("push", {}), inverse_name="push",
        ))
        registry.register(SemanticAction(
            name="drop", apply=lambda c: c,
            inverse=lambda p, b: ("push", {}), inverse_name="push",
        ))
        findings = analyze_workloads(
            registry, one_txn([SemanticOp("push", "k0")], name="s")
        )
        mismatches = [
            f for f in findings
            if f.rule == "repertoire/inverse-name-mismatch"
        ]
        assert len(mismatches) == 1
        assert "'drop'" in mismatches[0].message
        assert "'pop'" in mismatches[0].message
