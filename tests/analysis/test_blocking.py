"""Family 6: the event-loop blocking-call analyzer
(``repro.analysis.blocking``).

Most cases run against tiny synthetic ``rt/`` trees: the analyzer is
purely syntactic, so a module of a few lines exercises each rule and the
reachability traversal precisely.
"""

import pytest

from repro.analysis import default_root
from repro.analysis.blocking import PRAGMA, analyze_rt_blocking


@pytest.fixture()
def rt(tmp_path):
    (tmp_path / "rt").mkdir()

    def write(text, name="mod.py"):
        (tmp_path / "rt" / name).write_text(text)
        return tmp_path

    return write


def rules(findings):
    return [f.rule for f in findings]


class TestShippedTree:
    def test_runtime_is_clean(self):
        # the group-commit barrier's wal.sync() and the daemon's
        # boot/shutdown sites carry justified pragmas; nothing else may
        assert analyze_rt_blocking(default_root()) == []


class TestDirectCalls:
    def test_sleep_in_coroutine(self, rt):
        root = rt(
            "import time\n"
            "async def pump():\n"
            "    time.sleep(1)\n"
        )
        found = analyze_rt_blocking(root)
        assert rules(found) == ["blocking/sync-sleep"]
        assert found[0].location == "rt/mod.py:3"

    def test_fsync_in_coroutine(self, rt):
        root = rt(
            "import os\n"
            "async def flush():\n"
            "    os.fsync(3)\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/sync-fsync"]

    def test_builtin_open(self, rt):
        root = rt(
            "async def load():\n"
            "    with open('x') as f:\n"
            "        return f.read()\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/sync-file-io"]

    def test_os_file_ops(self, rt):
        root = rt(
            "import os\n"
            "async def rotate():\n"
            "    os.replace('a', 'b')\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/sync-file-io"]

    def test_subprocess(self, rt):
        root = rt(
            "import subprocess\n"
            "async def spawn():\n"
            "    subprocess.run(['true'])\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/subprocess"]

    def test_wal_chain_sync(self, rt):
        root = rt(
            "class D:\n"
            "    async def go(self):\n"
            "        self.site.wal.sync()\n"
        )
        found = analyze_rt_blocking(root)
        assert rules(found) == ["blocking/sync-fsync"]
        assert "WAL-chain" in found[0].message

    def test_checkpoint_always_counts(self, rt):
        root = rt(
            "class D:\n"
            "    async def go(self):\n"
            "        self.site.checkpoint()\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/sync-fsync"]

    def test_asyncio_writer_close_is_not_wal(self, rt):
        root = rt(
            "class D:\n"
            "    async def go(self):\n"
            "        self.writer.close()\n"
        )
        assert analyze_rt_blocking(root) == []


class TestReachability:
    def test_sync_helper_called_from_coroutine(self, rt):
        root = rt(
            "import os\n"
            "class D:\n"
            "    async def go(self):\n"
            "        self._helper()\n"
            "    def _helper(self):\n"
            "        os.fsync(3)\n"
        )
        found = analyze_rt_blocking(root)
        assert rules(found) == ["blocking/sync-fsync"]
        assert "reachable from D.go" in found[0].message

    def test_generator_is_a_seed(self, rt):
        # sim-engine handlers are generators the pump thread drives
        root = rt(
            "import time\n"
            "def handler():\n"
            "    time.sleep(1)\n"
            "    yield\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/sync-sleep"]

    def test_unreachable_sync_function_is_fine(self, rt):
        # nothing async calls it: it runs off-loop (harness code)
        root = rt(
            "import os\n"
            "def offline():\n"
            "    os.fsync(3)\n"
        )
        assert analyze_rt_blocking(root) == []

    def test_module_function_reachable_from_coroutine(self, rt):
        root = rt(
            "import time\n"
            "def helper():\n"
            "    time.sleep(1)\n"
            "async def go():\n"
            "    helper()\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/sync-sleep"]


class TestBusyLoop:
    def test_spin_without_yield(self, rt):
        root = rt(
            "async def spin():\n"
            "    while True:\n"
            "        pass\n"
        )
        assert rules(analyze_rt_blocking(root)) == ["blocking/busy-loop"]

    def test_awaiting_loop_is_fine(self, rt):
        root = rt(
            "import asyncio\n"
            "async def serve():\n"
            "    while True:\n"
            "        await asyncio.sleep(0)\n"
        )
        assert analyze_rt_blocking(root) == []


class TestPragma:
    def test_allow_blocking_suppresses(self, rt):
        root = rt(
            "import os\n"
            "async def flush():\n"
            f"    os.fsync(3)  # {PRAGMA}\n"
        )
        assert analyze_rt_blocking(root) == []
