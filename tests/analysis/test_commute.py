"""Family 2: commutativity matrix and stratification-risk warnings."""

import pytest

from repro.analysis import (
    analyze_matrix,
    analyze_workload_commutativity,
    build_matrix,
    ops_commute,
)
from repro.analysis.findings import Severity
from repro.compensation import (
    ActionRegistry,
    SemanticAction,
    standard_registry,
)
from repro.txn import GlobalTxnSpec, ReadOp, SemanticOp, SubtxnSpec, WriteOp
from repro.workload import standard_scenarios


@pytest.fixture
def registry():
    return standard_registry()


@pytest.fixture
def matrix(registry):
    return build_matrix(registry)


class TestMatrix:
    def test_additive_group_commutes_both_ways(self, matrix):
        assert "withdraw" in matrix["deposit"]
        assert "deposit" in matrix["withdraw"]
        assert "deposit" in matrix["deposit"]  # self-commuting

    def test_set_commutes_with_nothing(self, matrix):
        assert matrix["set"] == set()

    def test_symmetric_closure_of_one_sided_declaration(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="a", apply=lambda c: c, commutes_with=frozenset({"b"}),
        ))
        registry.register(SemanticAction(name="b", apply=lambda c: c))
        matrix = build_matrix(registry)
        assert "a" in matrix["b"] and "b" in matrix["a"]

    def test_standard_matrix_is_clean(self, registry):
        assert analyze_matrix(registry) == []

    def test_unknown_commute_ref_flagged(self):
        registry = ActionRegistry()
        registry.register(SemanticAction(
            name="a", apply=lambda c: c,
            commutes_with=frozenset({"phantom"}),
        ))
        findings = analyze_matrix(registry)
        assert [f.rule for f in findings] == ["commute/unknown-commute-ref"]
        assert findings[0].location == "registry:a"


class TestOpsCommute:
    def test_reads_commute(self, matrix):
        assert ops_commute(matrix, ReadOp("k"), ReadOp("k"))

    def test_read_write_conflict(self, matrix):
        assert not ops_commute(matrix, ReadOp("k"), WriteOp("k", 1))

    def test_blind_writes_never_commute(self, matrix):
        assert not ops_commute(matrix, WriteOp("k", 1), WriteOp("k", 2))

    def test_semantic_by_declaration(self, matrix):
        dep = SemanticOp("deposit", "k", {"amount": 1})
        wdr = SemanticOp("withdraw", "k", {"amount": 2})
        stv = SemanticOp("set", "k", {"value": 9})
        assert ops_commute(matrix, dep, wdr)
        assert not ops_commute(matrix, dep, stv)
        assert not ops_commute(matrix, stv, stv)


def crossing(op_builder_a, op_builder_b):
    """Two transactions meeting at both S1 and S2 on key k0."""
    return {"adv": [
        GlobalTxnSpec(txn_id="T1", subtxns=[
            SubtxnSpec("S1", [op_builder_a()]),
            SubtxnSpec("S2", [op_builder_a()]),
        ]),
        GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S1", [op_builder_b()]),
            SubtxnSpec("S2", [op_builder_b()]),
        ]),
    ]}


class TestStratificationRisk:
    def test_standard_scenarios_are_clean(self, registry):
        assert analyze_workload_commutativity(
            registry, standard_scenarios()
        ) == []

    def test_crossing_set_writers_warned(self, registry):
        # The cli `audit` shape: dirty set at both sites, reader behind it.
        findings = analyze_workload_commutativity(registry, crossing(
            lambda: SemanticOp("set", "k0", {"value": "dirty"}),
            lambda: ReadOp("k0"),
        ))
        assert [f.rule for f in findings] == ["commute/stratification-risk"]
        finding = findings[0]
        assert finding.severity is Severity.WARNING
        assert finding.location == "workload:adv/T1+T2"
        assert "S1,S2" in finding.message
        assert "A1-A4" in finding.anchor

    def test_commuting_crossers_not_warned(self, registry):
        findings = analyze_workload_commutativity(registry, crossing(
            lambda: SemanticOp("deposit", "k0", {"amount": 3}),
            lambda: SemanticOp("withdraw", "k0", {"amount": 1}),
        ))
        assert findings == []

    def test_single_site_conflict_not_warned(self, registry):
        # One shared conflicting site cannot order differently at two
        # sites — no static S1/S2 risk.
        specs = {"one": [
            GlobalTxnSpec(txn_id="T1", subtxns=[
                SubtxnSpec("S1", [SemanticOp("set", "k0", {"value": 1})]),
                SubtxnSpec("S2", [SemanticOp("deposit", "k1", {"amount": 1})]),
            ]),
            GlobalTxnSpec(txn_id="T2", subtxns=[
                SubtxnSpec("S1", [SemanticOp("set", "k0", {"value": 2})]),
                SubtxnSpec("S2", [SemanticOp("withdraw", "k1", {"amount": 1})]),
            ]),
        ]}
        findings = analyze_workload_commutativity(standard_registry(), specs)
        assert findings == []
