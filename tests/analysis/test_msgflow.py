"""Family 5, part 2: the per-scheme message-flow graph
(``repro.analysis.flow``: ``build_flow_graphs`` and the msgflow rules).
"""

import shutil

import pytest

from repro.analysis import default_root
from repro.analysis.flow import (
    SCHEME_ROLES,
    analyze_message_flow,
    build_flow_graphs,
    flow_edges,
    render_flow_dot,
)
from repro.commit.base import CommitScheme


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "repro"
    shutil.copytree(default_root(), root)
    return root


def edit(root, rel, old, new):
    path = root / rel
    text = path.read_text()
    assert old in text, f"mutation pattern drifted out of {rel}: {old!r}"
    path.write_text(text.replace(old, new))


def rules(findings):
    return [f.rule for f in findings]


class TestGraphs:
    def test_every_scheme_is_mapped(self):
        assert set(SCHEME_ROLES) == {m.name for m in CommitScheme}

    @pytest.mark.parametrize("scheme", sorted(SCHEME_ROLES))
    def test_voting_round_trip_present(self, scheme):
        # Every engine shares the 2PC skeleton: the coordinator asks for
        # votes, the participant answers, a decision goes back out.
        edges = set(flow_edges(build_flow_graphs(default_root())[scheme]))
        assert ("coordinator", "SUBTXN_REQ", "participant") in edges
        assert ("participant", "SUBTXN_ACK", "coordinator") in edges
        assert ("coordinator", "VOTE_REQ", "participant") in edges

    def test_o2pc_graph_is_exactly_the_2pc_skeleton(self):
        edges = flow_edges(build_flow_graphs(default_root())["O2PC"])
        assert edges == [
            ("coordinator", "DECISION", "participant"),
            ("coordinator", "SUBTXN_REQ", "participant"),
            ("coordinator", "VOTE_REQ", "participant"),
            ("participant", "ACK", "coordinator"),
            ("participant", "SUBTXN_ACK", "coordinator"),
            ("participant", "VOTE", "coordinator"),
        ]

    def test_paxos_graph_includes_the_acceptor_rounds(self):
        edges = set(flow_edges(build_flow_graphs(default_root())["PAXOS"]))
        # 2a from both the leader and the participants' ballot-0 votes
        assert ("participant", "PAXOS_ACCEPT", "acceptor") in edges
        assert ("coordinator", "PAXOS_ACCEPT", "acceptor") in edges
        assert ("acceptor", "PAXOS_ACCEPTED", "coordinator") in edges
        # the termination watchdog relays DECISION peer-to-peer
        assert ("participant", "DECISION", "participant") in edges

    def test_short_graph_inherits_base_sends_via_super(self):
        # ShortParticipant delegates SUBTXN_REQ/DECISION handling to the
        # base class with super() — the splice keeps those sends visible.
        edges = set(flow_edges(build_flow_graphs(default_root())["SHORT"]))
        assert ("participant", "SUBTXN_ACK", "coordinator") in edges
        assert ("participant", "ACK", "coordinator") in edges


class TestRules:
    def test_shipped_tree_is_clean(self):
        assert analyze_message_flow(default_root()) == []

    def test_orphan_send_when_one_engine_drops_its_handler(self, tree):
        # Removing DECISION from the Paxos participant ONLY: the union
        # dispatch family stays quiet (the base participant still has
        # it), but the PAXOS scheme now drops its decision on the floor.
        edit(
            tree, "protocols/paxos.py",
            'MsgType.DECISION: "_handle_decision",\n', "",
        )
        found = analyze_message_flow(tree)
        assert "msgflow/orphan-send" in rules(found)
        assert any("PAXOS" in f.message for f in found)

    def test_dead_handler_when_nobody_sends(self, tree):
        # An inbound type nobody emits in that scheme's graph.
        edit(
            tree, "commit/participant.py",
            "        MsgType.DECISION: \"_handle_decision\",",
            "        MsgType.DECISION: \"_handle_decision\",\n"
            "        MsgType.PAXOS_PROMISE: \"_handle_decision\",",
        )
        found = analyze_message_flow(tree)
        assert "msgflow/dead-handler" in rules(found)

    def test_runtime_unroutable_when_inbound_shrinks(self, tree):
        edit(
            tree, "rt/daemon.py",
            "MsgType.SUBTXN_REQ, MsgType.VOTE_REQ, MsgType.DECISION,",
            "MsgType.SUBTXN_REQ, MsgType.DECISION,",
        )
        found = analyze_message_flow(tree)
        unroutable = [
            f for f in found if f.rule == "msgflow/runtime-unroutable"
        ]
        assert unroutable
        assert all("VOTE_REQ" in f.message for f in unroutable)

    def test_runtime_dead_inbound_warns(self, tree):
        # VOTE flows to the coordinator (the client), never to a daemon.
        edit(
            tree, "rt/daemon.py",
            "MsgType.SUBTXN_REQ, MsgType.VOTE_REQ, MsgType.DECISION,",
            "MsgType.SUBTXN_REQ, MsgType.VOTE_REQ, MsgType.DECISION, "
            "MsgType.VOTE,",
        )
        found = analyze_message_flow(tree)
        assert rules(found) == ["msgflow/runtime-dead-inbound"]
        assert found[0].severity.value == "warning"

    def test_unmapped_scheme_fires(self, monkeypatch):
        monkeypatch.delitem(SCHEME_ROLES, "SHORT")
        found = analyze_message_flow(default_root())
        assert rules(found) == ["msgflow/unmapped-scheme"]
        assert "CommitScheme.SHORT" in found[0].message


class TestDot:
    def test_one_graph_per_scheme(self):
        graphs = render_flow_dot(default_root())
        assert set(graphs) == set(SCHEME_ROLES)

    def test_dot_shape_and_determinism(self):
        a = render_flow_dot(default_root())
        b = render_flow_dot(default_root())
        assert a == b
        dot = a["O2PC"]
        assert dot.startswith("digraph flow_O2PC {")
        assert '"coordinator" -> "participant" [label="VOTE_REQ"];' in dot
        assert dot.endswith("}\n")

    def test_acceptor_appears_only_in_paxos(self):
        graphs = render_flow_dot(default_root())
        assert '"acceptor"' in graphs["PAXOS"]
        for scheme in ("TWO_PL", "O2PC", "SHORT"):
            assert "acceptor" not in graphs[scheme]
