"""The lint runner and the ``repro lint`` CLI verb."""

import json

import pytest

from repro import analysis
from repro.analysis import render_json, render_text, run_all
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.cli import main


class TestRunner:
    def test_shipped_repo_has_zero_findings(self):
        report = run_all()
        assert report.ok
        assert report.findings == []
        assert report.stats["actions"] == 10
        assert report.stats["workloads"] == 3
        assert report.stats["files_scanned"] > 50

    def test_json_report_is_deterministic(self):
        a = render_json(run_all())
        b = render_json(run_all())
        assert a == b
        payload = json.loads(a)
        assert payload["ok"] is True
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_text_report_mentions_inputs(self):
        text = render_text(run_all())
        assert "no findings" in text
        assert "10 actions" in text

    def test_sort_findings_is_total_and_stable(self):
        f1 = Finding("b/rule", Severity.ERROR, "loc1", "m")
        f2 = Finding("a/rule", Severity.WARNING, "loc2", "m")
        f3 = Finding("a/rule", Severity.ERROR, "loc1", "m")
        assert sort_findings([f1, f2, f3]) == [f3, f2, f1]

    def test_findings_render_with_anchor(self):
        f = Finding(
            "repertoire/uncovered-write", Severity.ERROR,
            "workload:w/T1@S1", "missing keys", anchor="Theorem 2",
        )
        text = f.render()
        assert "ERROR" in text
        assert "workload:w/T1@S1" in text
        assert "[Theorem 2]" in text


class TestCli:
    def test_lint_exits_zero_on_clean_repo(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_lint_exits_one_on_findings(self, capsys, monkeypatch):
        finding = Finding(
            "determinism/wall-clock", Severity.ERROR,
            "commit/base.py:1", "call to time.time()",
            anchor="checker replay",
        )

        def fake_run_all(root=None):
            return analysis.LintReport(findings=[finding], stats={})

        monkeypatch.setattr(analysis, "run_all", fake_run_all)
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "determinism/wall-clock" in out
        assert "1 finding(s)" in out

    def test_lint_flow_dot_writes_one_graph_per_scheme(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "graphs"
        assert main(["lint", "--flow-dot", str(out_dir)]) == 0
        capsys.readouterr()
        names = sorted(p.name for p in out_dir.iterdir())
        assert names == [
            "flow_O2PC.dot", "flow_PAXOS.dot", "flow_SHORT.dot",
            "flow_TWO_PL.dot",
        ]
        dot = (out_dir / "flow_O2PC.dot").read_text()
        assert dot.startswith("digraph flow_O2PC {")
        assert "VOTE_REQ" in dot

    def test_lint_root_points_ast_families_elsewhere(self, tmp_path, capsys):
        # A minimal fake tree: clean dispatch/flow/msgflow/blocking
        # declarations but a wall-clock leak — proves --root rescans, and
        # the exit code gates.  A tiny SUBTXN_REQ/VOTE round-trip keeps
        # the message-flow graph closed, and the participant forces its
        # log (ltm.prepare) before the YES vote so the force-before-send
        # family is satisfied too.
        (tmp_path / "net").mkdir()
        (tmp_path / "commit").mkdir()
        (tmp_path / "rt").mkdir()
        (tmp_path / "txn").mkdir()
        (tmp_path / "net" / "message.py").write_text(
            "class MsgType:\n"
            "    SUBTXN_REQ = 1\n"
            "    VOTE = 2\n"
        )
        (tmp_path / "commit" / "coordinator.py").write_text(
            "class Coordinator:\n"
            "    _COLLECTS = (MsgType.VOTE,)\n"
            "    def run(self):\n"
            "        self.network.send(Message(\n"
            "            msg_type=MsgType.SUBTXN_REQ, payload={},\n"
            "        ))\n"
        )
        (tmp_path / "commit" / "participant.py").write_text(
            "import time\n"
            "class Participant:\n"
            "    _HANDLERS = {MsgType.SUBTXN_REQ: '_handle'}\n"
            "    WALL = time.time()\n"
            "    def _handle(self, msg):\n"
            "        self.site.ltm.prepare('t')\n"
            "        self._reply(msg, MsgType.VOTE, {'vote': 'YES'})\n"
        )
        (tmp_path / "txn" / "local_manager.py").write_text(
            "class LocalTransactionManager:\n"
            "    _FORCE_POINTS = ('prepare',)\n"
            "    def prepare(self, txn_id):\n"
            "        self.wal.append('PREPARE', force=True)\n"
        )
        (tmp_path / "rt" / "daemon.py").write_text(
            "class SiteDaemon:\n"
            "    _INBOUND = (MsgType.SUBTXN_REQ,)\n"
            "    def boot(self):\n"
            "        self.transport.durability_gate = gate\n"
        )
        (tmp_path / "rt" / "client.py").write_text(
            "class NetClient:\n"
            "    _INBOUND = (MsgType.VOTE,)\n"
        )
        (tmp_path / "rt" / "transport.py").write_text(
            "class TcpTransport:\n"
            "    async def _flush_outbound(self):\n"
            "        await self.durability_gate()\n"
            "        self.writer.write(b'')\n"
        )
        (tmp_path / "protocols").mkdir()
        (tmp_path / "protocols" / "paxos.py").write_text(
            "class PaxosCommitCoordinator:\n"
            "    _COLLECTS = ()\n"
            "class PaxosParticipant:\n"
            "    _HANDLERS = {}\n"
        )
        (tmp_path / "protocols" / "short.py").write_text(
            "class ShortParticipant:\n"
            "    _HANDLERS = {}\n"
        )
        (tmp_path / "protocols" / "acceptor.py").write_text(
            "class Acceptor:\n"
            "    _HANDLERS = {MsgType.SUBTXN_REQ: '_handle'}\n"
        )
        assert main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "determinism/wall-clock" in out
        # only the seeded leak fires — the new families are clean on
        # this tree
        assert "1 finding(s)" in out


@pytest.mark.parametrize("flag", [[], ["--json"]])
def test_lint_runs_from_module_entry(flag, capsys):
    # `python -m repro lint` goes through the same main()
    assert main(["lint", *flag]) == 0
