"""Family 5: force-before-send, the runtime durability gate, and
force-point drift (``repro.analysis.flow``, part 1).

Every mutation test copies the installed package tree, breaks ONE force
discipline, and asserts the exact rule fires — parameterized across all
four commit-scheme engines plus the Paxos acceptor, since each engine
has its own force point and its own outcome-revealing send.
"""

import shutil

import pytest

from repro.analysis import default_root
from repro.analysis.flow import (
    OBLIGATIONS,
    PRAGMA,
    analyze_flow,
    analyze_force_before_send,
    analyze_force_points,
    analyze_rt_gate,
)


@pytest.fixture()
def tree(tmp_path):
    """A scratch copy of the real package tree, safe to mutate."""
    root = tmp_path / "repro"
    shutil.copytree(default_root(), root)
    return root


def edit(root, rel, old, new):
    path = root / rel
    text = path.read_text()
    assert old in text, f"mutation pattern drifted out of {rel}: {old!r}"
    path.write_text(text.replace(old, new))


def rules(findings):
    return [f.rule for f in findings]


class TestShippedTreeIsClean:
    def test_no_findings(self):
        assert analyze_flow(default_root()) == []

    def test_obligations_cover_every_engine(self):
        classes = {ob.class_name for ob in OBLIGATIONS}
        # base 2PC/O2PC participant + coordinator, Short-Commit, Paxos
        # Commit participant, and the acceptor ensemble
        assert classes == {
            "Participant", "Coordinator", "ShortParticipant",
            "PaxosParticipant", "Acceptor",
        }


#: engine → (file, force statement whose deletion uncovers the send)
_FORCE_MUTATIONS = {
    "TWO_PL": (
        "commit/participant.py",
        "            self.site.ltm.prepare(txn_id)\n",
    ),
    "O2PC": (
        "commit/participant.py",
        "            self.site.ltm.local_commit(txn_id)\n",
    ),
    "SHORT": (
        "protocols/short.py",
        "        self.site.ltm.prepare(txn_id)\n",
    ),
    "PAXOS": (
        "protocols/paxos.py",
        "        self.site.ltm.prepare(txn_id)\n",
    ),
    "ACCEPTOR": (
        "protocols/acceptor.py",
        "        self._persist()\n        self.network.send(Message(\n",
    ),
}


class TestUnforcedSend:
    @pytest.mark.parametrize("engine", sorted(_FORCE_MUTATIONS))
    def test_deleting_the_force_point_fires(self, tree, engine):
        rel, stmt = _FORCE_MUTATIONS[engine]
        if engine == "ACCEPTOR":
            edit(tree, rel, stmt, "        self.network.send(Message(\n")
        else:
            edit(tree, rel, stmt, "")
        found = analyze_force_before_send(tree)
        assert "flow/unforced-send" in rules(found)
        assert all(rel in f.location for f in found)

    def test_both_vote_branches_must_force(self, tree):
        # Deleting only the 2PL-branch prepare leaves the O2PC branch
        # covered — the if-merge is an AND, so the YES send is still
        # reported as reachable without a force.
        edit(
            tree, "commit/participant.py",
            "            self.site.ltm.prepare(txn_id)\n", "",
        )
        found = analyze_force_before_send(tree)
        assert rules(found) == ["flow/unforced-send"]

    def test_pragma_suppresses(self, tree):
        edit(
            tree, "protocols/short.py",
            "        self.site.ltm.prepare(txn_id)\n", "",
        )
        edit(
            tree, "protocols/short.py",
            '        self._reply(msg, MsgType.VOTE, {"vote": "YES"})',
            '        self._reply(msg, MsgType.VOTE, {"vote": "YES"})'
            f"  # {PRAGMA}",
        )
        assert analyze_force_before_send(tree) == []

    def test_no_votes_stay_exempt(self):
        # The shipped tree's NO replies are presumed-abort: uncovered by
        # design, and not findings.
        assert analyze_force_before_send(default_root()) == []


class TestRtGate:
    def test_removing_the_gate_await_fires(self, tree):
        edit(
            tree, "rt/transport.py",
            "                if self.durability_gate is not None:\n"
            "                    await self.durability_gate()\n",
            "",
        )
        found = analyze_rt_gate(tree)
        assert "flow/rt-durability-gate" in rules(found)
        assert any("never awaits" in f.message for f in found)

    def test_removing_the_daemon_install_fires(self, tree):
        edit(
            tree, "rt/daemon.py",
            "            self.transport.durability_gate = "
            "self.flusher.barrier\n",
            "",
        )
        found = analyze_rt_gate(tree)
        assert "flow/rt-durability-gate" in rules(found)
        assert any("never installs" in f.message for f in found)


class TestForcePointDrift:
    def test_undeclared_force_point_fires(self, tree):
        edit(tree, "txn/local_manager.py", '"prepare",', "")
        found = analyze_force_points(tree)
        assert rules(found) == ["flow/force-point-drift"]
        assert "not declared" in found[0].message

    def test_declared_but_unforced_fires(self, tree):
        edit(
            tree, "txn/local_manager.py",
            '"commit",', '"commit", "made_up",',
        )
        found = analyze_force_points(tree)
        assert rules(found) == ["flow/force-point-drift"]
        assert "'made_up'" in found[0].message
        assert "no longer met" in found[0].message
