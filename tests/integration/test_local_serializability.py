"""System-level property: local histories are always serializable.

The paper *assumes* local serializability ("since we assume that local
histories are serializable ... we focus on preventing regular cycles").
In this implementation it is not an assumption but a consequence of strict
2PL at every site — so every recorded local SG must be acyclic, whatever
the workload, scheme, protocol, abort rate, or failure schedule.
"""

from hypothesis import given, settings, strategies as st

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.workload import WorkloadConfig, WorkloadGenerator


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheme=st.sampled_from([CommitScheme.O2PC, CommitScheme.TWO_PL]),
    protocol=st.sampled_from(["none", "P1", "P2"]),
    abort_p=st.sampled_from([0.0, 0.2, 0.4]),
    zipf=st.sampled_from([0.0, 0.8]),
)
def test_every_local_sg_is_acyclic(seed, scheme, protocol, abort_p, zipf):
    system = System(SystemConfig(
        scheme=scheme, protocol=protocol, n_sites=3, keys_per_site=6,
        seed=seed,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=20, abort_probability=abort_p,
        arrival_mean=1.5, zipf_theta=zipf, locals_per_global=0.5,
    ), seed=seed)
    gen.run()
    gsg = system.global_sg()
    for site_id, sg in gsg.locals.items():
        cycle = sg.find_local_cycle()
        assert cycle is None, f"local cycle at {site_id}: {cycle}"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_local_sg_is_acyclic_under_lock_marks(seed):
    """The locked-marking-set variant also preserves local serializability
    (its marks conflicts go through the same strict 2PL)."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1", n_sites=3,
        keys_per_site=6, seed=seed, lock_marks=True,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=15, abort_probability=0.25, arrival_mean=2.0,
    ), seed=seed)
    gen.run()
    for site_id, sg in system.global_sg().locals.items():
        assert sg.find_local_cycle() is None, site_id
