"""Integration: local autonomy (Section 1).

A site must be able to abort a local (sub)transaction unilaterally at any
time before it terminates, and local transactions are never restricted by
the marking protocols.
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def spec(txn_id="T1"):
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})]),
    ])


def test_unilateral_abort_before_vote_forces_global_abort():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    proc = system.submit(spec())

    def saboteur():
        # After S1 executed (t=1) but before the vote round (t=5).
        yield system.env.timeout(2.0)
        assert system.participants["S1"].unilateral_abort("T1")

    system.env.process(saboteur())
    outcome = system.env.run(proc)
    assert not outcome.committed
    system.env.run()
    assert system.sites["S1"].store.get("k0") == 100
    assert system.sites["S2"].store.get("k0") == 100
    system.check_correctness()


def test_unilateral_abort_releases_local_resources_immediately():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    system.submit(spec())

    def saboteur():
        yield system.env.timeout(2.0)
        system.participants["S1"].unilateral_abort("T1")
        # Locks gone immediately: the site's resources are its own again.
        assert system.sites["S1"].locks.locks_of("T1") == {}

    system.env.process(saboteur())
    system.env.run()


def test_unilateral_abort_rejected_after_vote():
    """Once a site votes, the fate of the subtransaction belongs to the
    coordinator — but under O2PC the site's locks are already free."""
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    proc = system.submit(spec())

    refused = []

    def saboteur():
        yield system.env.timeout(6.0)  # after votes (t=5)
        refused.append(not system.participants["S1"].unilateral_abort("T1"))
        assert system.sites["S1"].locks.locks_of("T1") == {}

    system.env.process(saboteur())
    outcome = system.env.run(proc)
    assert refused == [True]
    assert outcome.committed


def test_local_transactions_bypass_marking_protocol():
    """P1 restricts only global transactions (Section 6.1): a local
    transaction runs at a site regardless of its marks."""
    system = System(SystemConfig(scheme=CommitScheme.O2PC, protocol="P1"))
    from repro.core.marking import MarkingEvent

    # Site S1 undone wrt T9: global transactions carrying no marks would
    # still pass, but a transaction marked elsewhere would be restricted.
    system.marking.directory.machine("S1").fire(
        "T9", MarkingEvent.VOTE_ABORT
    )
    done = system.env.run(system.run_local(
        "S1", system.next_local_id(),
        [SemanticOp("deposit", "k0", {"amount": 5})],
    ))
    assert done
    assert system.sites["S1"].store.get("k0") == 105


def test_local_and_global_transactions_interleave_correctly():
    system = System(SystemConfig(scheme=CommitScheme.O2PC, n_sites=2))
    system.submit(spec("T1"))
    for i in range(5):
        system.run_local(
            "S1", system.next_local_id(),
            [SemanticOp("deposit", "k0", {"amount": 1})],
        )
    system.env.run()
    assert system.outcomes[0].committed
    # 100 - 10 (transfer out) + 5 (locals) = 95
    assert system.sites["S1"].store.get("k0") == 95
    assert system.sites["S2"].store.get("k0") == 110
    system.check_correctness()
