"""Integration: determinism — the property every experiment rests on.

Two systems built from the same configuration and fed the same workload
must produce byte-identical observable behavior: outcomes, timestamps,
message counts, store contents, histories.
"""

from hypothesis import given, settings, strategies as st

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_fingerprint(seed, protocol, abort_p, scheme):
    system = System(SystemConfig(
        scheme=scheme, protocol=protocol, n_sites=3, keys_per_site=8,
        seed=seed,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=15, abort_probability=abort_p,
        arrival_mean=2.0, zipf_theta=0.4, locals_per_global=0.5,
    ), seed=seed)
    gen.run()
    outcomes = tuple(
        (o.txn_id, o.committed, round(o.start_time, 9), round(o.end_time, 9),
         tuple(o.no_votes), tuple(o.compensated_sites), o.rejections)
        for o in sorted(system.outcomes, key=lambda o: o.txn_id)
    )
    stores = tuple(
        (sid, tuple(sorted(site.store.snapshot().items())))
        for sid, site in sorted(system.sites.items())
    )
    histories = tuple(
        (sid, tuple(repr(op) for op in site.history.ops))
        for sid, site in sorted(system.sites.items())
    )
    messages = tuple(sorted(system.network.counts_by_type().items()))
    return outcomes, stores, histories, messages


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(["none", "P1", "P2"]),
    st.sampled_from([0.0, 0.2]),
    st.sampled_from([CommitScheme.O2PC, CommitScheme.TWO_PL]),
)
def test_same_configuration_same_run(seed, protocol, abort_p, scheme):
    first = run_fingerprint(seed, protocol, abort_p, scheme)
    second = run_fingerprint(seed, protocol, abort_p, scheme)
    assert first == second


def test_different_seeds_differ():
    a = run_fingerprint(1, "P1", 0.2, CommitScheme.O2PC)
    b = run_fingerprint(2, "P1", 0.2, CommitScheme.O2PC)
    assert a != b
