"""Integration: lossy networks.

With a nonzero per-message loss probability, transactions still terminate
(timeouts convert missing messages into aborts; retransmission rounds
deliver late decisions) and the system's invariants hold: no zombie lock
holders, conserved balances, a correct history.
"""

from repro.commit import CommitConfig, CommitScheme
from repro.harness import System, SystemConfig
from repro.txn.transaction import TxnStatus
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_lossy(loss, seed=1, n_txns=30):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        n_sites=3,
        message_loss=loss,
        seed=seed,
        commit=CommitConfig(
            spawn_timeout=25.0, vote_timeout=25.0, ack_timeout=25.0,
            decision_retries=3,
        ),
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=n_txns, arrival_mean=4.0, read_fraction=0.5,
    ), seed=seed)
    elapsed = gen.run()
    return system, system.metrics(elapsed)


def assert_no_zombie_locks(system):
    for site in system.sites.values():
        for txn, status in site.ltm.status.items():
            if status in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
                assert site.locks.locks_of(txn) == {}, (
                    f"{txn} still holds locks at {site.site_id}"
                )


def test_all_transactions_terminate_under_loss():
    system, report = run_lossy(loss=0.05)
    assert report.committed + report.aborted == 30
    assert report.committed > 0


def test_loss_causes_aborts_but_not_corruption():
    system, report = run_lossy(loss=0.15, seed=2)
    assert report.committed + report.aborted == 30
    assert_no_zombie_locks(system)
    system.check_correctness()


def test_dropped_messages_are_counted():
    system, _ = run_lossy(loss=0.15, seed=3)
    assert sum(system.network.dropped.values()) > 0


def test_higher_loss_lowers_commit_rate():
    _, clean = run_lossy(loss=0.0, seed=4)
    _, lossy = run_lossy(loss=0.25, seed=4)
    assert lossy.committed < clean.committed
    assert clean.committed == 30


def test_balances_consistent_despite_loss():
    """Every committed transaction's effects are fully applied; every
    aborted one's are fully revoked — even when decisions needed
    retransmission."""
    system, report = run_lossy(loss=0.1, seed=5)
    system.env.run()
    for outcome in system.outcomes:
        for sub in system.coordinators[outcome.txn_id].spec.subtxns:
            status = system.sites[sub.site_id].ltm.status.get(outcome.txn_id)
            if outcome.committed:
                assert status is TxnStatus.COMMITTED, (
                    f"{outcome.txn_id} at {sub.site_id}: {status}"
                )
            else:
                assert status in (
                    None, TxnStatus.ABORTED, TxnStatus.COMPENSATED,
                    # a decision lost to all retransmission rounds can leave
                    # a locally-committed participant awaiting resolution -
                    # blocked-free but undecided (2PC's residual window)
                    TxnStatus.LOCALLY_COMMITTED,
                ), f"{outcome.txn_id} at {sub.site_id}: {status}"
