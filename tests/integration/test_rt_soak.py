"""Chaos soak: pipelined transfers while daemons are SIGKILLed at random.

Waves of concurrent cross-site transfers run against a live cluster;
during each wave one randomly chosen daemon is ``kill -9``-ed and
restarted mid-pipeline.  Transactions racing the crash abort on timeout
or land in ``pending_decisions``; the client's decision retransmission
then finalizes every survivor.  The invariants at the end are the
paper's whole durability story in one assertion each:

* **balance conservation** — transfers only move value, so however many
  transactions committed, aborted, or were compensated, the cluster-wide
  sum equals the preloaded total;
* **no in-doubt leftovers** — after retransmission and a clean restart,
  no site still holds an undecided transaction (nothing blocks, nothing
  waits for compensation).

Sized for tier-1 by default; CI scales it up via ``REPRO_SOAK_ROUNDS``
and ``REPRO_SOAK_TRANSFERS`` (transfers per round).
"""

import asyncio
import os
import random
import time

from repro.commit.base import CommitConfig, CommitScheme
from repro.harness.system import SystemConfig
from repro.rt.client import NetClient, site_read
from repro.rt.system import NetSystem, wait_for_port
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec

ROUNDS = int(os.environ.get("REPRO_SOAK_ROUNDS", "2"))
TRANSFERS = int(os.environ.get("REPRO_SOAK_TRANSFERS", "40"))
SESSIONS = 8
KEYS = 20
INITIAL = 100
TIME_SCALE = 0.002


def transfer_specs(site_ids, n, rnd, round_no):
    specs = []
    for i in range(n):
        src, dst = rnd.sample(site_ids, 2)
        key = f"k{rnd.randrange(KEYS)}"
        amount = rnd.randint(1, 5)
        specs.append(GlobalTxnSpec(txn_id=f"soak{round_no}.{i}", subtxns=[
            SubtxnSpec(src, [SemanticOp("withdraw", key,
                                        {"amount": amount})]),
            SubtxnSpec(dst, [SemanticOp("deposit", key,
                                        {"amount": amount})]),
        ]))
    return specs


def make_client(system):
    # Short timeouts so transactions racing a dead daemon abort in real
    # milliseconds instead of the default 200 sim units.
    return NetClient(
        system.cluster, scheme=CommitScheme.O2PC,
        commit=CommitConfig(vote_timeout=100, ack_timeout=100,
                            decision_retries=1),
        time_scale=TIME_SCALE,
    )


async def kill_and_restart(system, site_id):
    """SIGKILL one daemon mid-pipeline, then bring it back."""
    await asyncio.sleep(0.05)  # let the wave get in flight
    system.kill_site(site_id)
    await asyncio.sleep(0.1)  # transactions time out against the corpse
    system.start_site(site_id)
    spec = system.cluster.site(site_id)
    await asyncio.get_running_loop().run_in_executor(
        None, wait_for_port, spec.host, spec.port,
    )


def run_wave(system, client, specs, victim):
    async def scenario():
        chaos = asyncio.ensure_future(kill_and_restart(system, victim))
        try:
            return await client.run_pipelined(specs, sessions=SESSIONS)
        finally:
            await chaos

    return asyncio.run(scenario())


def drain_pending(client, attempts=5):
    """Retransmit decisions until every site has acknowledged."""
    for _ in range(attempts):
        if not client.pending_decisions:
            return
        client.resend_pending()
    assert not client.pending_decisions, (
        f"undeliverable decisions: {client.pending_decisions}"
    )


def wait_recovered(system, site_id, deadline=10.0):
    end = time.monotonic() + deadline
    while True:
        try:
            status = system.site_status(site_id)
        except OSError:
            status = None
        if status is not None and status.get("recovered") is not None:
            return status
        if time.monotonic() >= end:
            raise TimeoutError(f"{site_id} never finished recovery")
        time.sleep(0.05)


class TestSoak:
    def test_chaos_waves_conserve_balance_and_leave_nothing_in_doubt(
        self, tmp_path,
    ):
        rnd = random.Random(42)
        config = SystemConfig(
            n_sites=3, scheme=CommitScheme.O2PC, protocol="none",
            keys_per_site=KEYS, backend="net", time_scale=TIME_SCALE,
        )
        with NetSystem(config) as system:
            site_ids = system.cluster.site_ids
            committed = aborted = 0
            for round_no in range(ROUNDS):
                client = make_client(system)
                specs = transfer_specs(
                    site_ids, TRANSFERS, rnd, round_no,
                )
                victim = rnd.choice(site_ids)
                outcomes = run_wave(system, client, specs, victim)
                committed += sum(1 for o in outcomes if o.committed)
                aborted += sum(1 for o in outcomes if not o.committed)
                wait_recovered(system, victim)
                drain_pending(client)

            # the chaos actually exercised both paths in aggregate
            assert committed > 0
            assert committed + aborted == ROUNDS * TRANSFERS

            # clean restart of every daemon: recovery must classify
            # nothing as still undecided
            for site_id in site_ids:
                proc = system.procs[site_id]
                from repro.rt.client import site_shutdown
                site_shutdown(system.cluster, site_id)
                proc.wait(timeout=10)
                system.start_site(site_id)
                spec = system.cluster.site(site_id)
                wait_for_port(spec.host, spec.port)
                status = wait_recovered(system, site_id)
                assert status["fresh_boot"] is False
                assert status["recovered"]["in_doubt"] == []
                assert status["recovered"]["locally_committed"] == []

            # balance conservation across every committed, aborted, and
            # compensated transfer
            total = sum(
                site_read(system.cluster, site_id, f"k{i}")
                for site_id in site_ids
                for i in range(KEYS)
            )
            assert total == len(site_ids) * KEYS * INITIAL
