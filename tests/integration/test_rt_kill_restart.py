"""Kill -9 a real participant daemon mid-2PC and recover it from its WAL.

The acceptance scenario for the networked runtime: a ``repro serve``
daemon is SIGKILLed **between its VOTE-COMMIT and the coordinator's
decision** — the exact window where O2PC has already locally committed
(updates exposed, locks released, LOCAL-COMMIT force-logged) while the
global outcome is still open.  On restart the daemon's WAL recovery must
re-derive the *locally committed* classification (the sim restart
oracle's second bucket), re-expose the updates, and — when the decision
turns out to be ABORT — run the compensating subtransaction.

The test speaks the wire protocol itself (it *is* the coordinator), so
the kill lands deterministically between two specific frames rather than
at a scheduler's whim.  The 2PL variant pins the other bucket: a
prepared participant restarts *in doubt*, holding its write locks until
the decision arrives.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.commit.base import CommitConfig, CommitScheme
from repro.net.message import Message, MsgType
from repro.rt.client import NetClient, site_read, site_shutdown, site_status
from repro.rt.config import local_cluster
from repro.rt.system import wait_for_port
from repro.rt.wire import message_from_json, message_to_json, read_frame, \
    write_frame
from repro.txn.operations import SemanticOp

COORD = "coord.T1"
SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def spawn_daemon(cluster_file, site_id="S1", scheme="O2PC"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", site_id,
         "--cluster", cluster_file, "--scheme", scheme],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )


def wait_until(predicate, deadline=10.0, interval=0.05):
    end = time.monotonic() + deadline
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= end:
            raise TimeoutError("condition not met in time")
        time.sleep(interval)


def daemon_ready(cluster, site_id="S1", recovered=False):
    """Block until the daemon answers status (and finished recovery)."""
    spec = cluster.site(site_id)
    wait_for_port(spec.host, spec.port)

    def check():
        status = site_status(cluster, site_id)
        if status is None:
            return None
        if recovered and status.get("recovered") is None:
            return None
        if not recovered and status.get("keys", 0) == 0:
            return None
        return status

    return wait_until(check)


class WireCoordinator:
    """A hand-rolled coordinator: one TCP connection, explicit frames."""

    def __init__(self, cluster, site_id="S1"):
        self.address = cluster.site(site_id).address
        self.site_id = site_id

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            *self.address
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def call(self, msg_type, payload, reply_type):
        message = Message(
            msg_type=msg_type, sender=COORD, recipient=self.site_id,
            txn_id="T1", payload=payload,
        )
        await write_frame(self.writer, message_to_json(message))
        frame = await asyncio.wait_for(read_frame(self.reader), timeout=10)
        assert frame is not None, "daemon hung up mid-protocol"
        reply = message_from_json(frame)
        assert reply.msg_type is reply_type
        return reply


def run_round(cluster, msg_type, payload, reply_type):
    async def scenario():
        async with WireCoordinator(cluster) as coord:
            return await coord.call(msg_type, payload, reply_type)

    return asyncio.run(scenario())


def execute_and_vote(cluster):
    """Drive T1 up to (and including) the participant's YES vote."""
    async def scenario():
        async with WireCoordinator(cluster) as coord:
            ack = await coord.call(
                MsgType.SUBTXN_REQ,
                {"ops": [SemanticOp("withdraw", "k0", {"amount": 30})],
                 "transmarks": []},
                MsgType.SUBTXN_ACK,
            )
            assert ack.payload["executed"] is True
            vote = await coord.call(
                MsgType.VOTE_REQ, {"transmarks": []}, MsgType.VOTE,
            )
            assert vote.payload["vote"] == "YES"

    asyncio.run(scenario())


@pytest.fixture
def cluster(tmp_path):
    cluster = local_cluster(["S1"], data_dir=str(tmp_path))
    cluster.save(str(tmp_path / "cluster.json"))
    return cluster


@pytest.fixture
def cluster_file(cluster, tmp_path):
    return str(tmp_path / "cluster.json")


class TestKillRestartO2PC:
    def test_locally_committed_survives_kill_and_compensates_on_abort(
        self, cluster, cluster_file,
    ):
        proc = spawn_daemon(cluster_file)
        try:
            daemon_ready(cluster)
            execute_and_vote(cluster)
            # O2PC: the YES vote locally committed — updates exposed.
            assert site_read(cluster, "S1", "k0") == 70

            # The crash window: after VOTE-COMMIT, before any decision.
            proc.send_signal(signal.SIGKILL)
            proc.wait()

            proc = spawn_daemon(cluster_file)
            status = daemon_ready(cluster, recovered=True)

            # WAL recovery re-derived the classification the simulated
            # restart oracle checks: T1 is locally committed, not in
            # doubt, and its exposed update was redone into the store.
            assert status["fresh_boot"] is False
            assert status["recovered"]["locally_committed"] == ["T1"]
            assert status["recovered"]["in_doubt"] == []
            assert site_read(cluster, "S1", "k0") == 70

            # Global ABORT: the daemon must compensate (semantic undo),
            # not roll back — the locks are long gone.
            ack = run_round(
                cluster, MsgType.DECISION, {"decision": "ABORT"},
                MsgType.ACK,
            )
            assert ack.payload["compensated"] is True
            assert site_read(cluster, "S1", "k0") == 100
        finally:
            if proc.poll() is None:
                try:
                    site_shutdown(cluster, "S1")
                    proc.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    proc.kill()
                    proc.wait()

    def test_commit_decision_after_restart_finalizes(
        self, cluster, cluster_file,
    ):
        proc = spawn_daemon(cluster_file)
        try:
            daemon_ready(cluster)
            execute_and_vote(cluster)
            proc.send_signal(signal.SIGKILL)
            proc.wait()

            proc = spawn_daemon(cluster_file)
            daemon_ready(cluster, recovered=True)

            ack = run_round(
                cluster, MsgType.DECISION, {"decision": "COMMIT"},
                MsgType.ACK,
            )
            assert ack.payload["compensated"] is False
            assert site_read(cluster, "S1", "k0") == 70
        finally:
            if proc.poll() is None:
                try:
                    site_shutdown(cluster, "S1")
                    proc.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    proc.kill()
                    proc.wait()


class TestDecisionRetransmission:
    def test_resend_pending_finalizes_a_restarted_in_doubt_daemon(
        self, cluster, cluster_file,
    ):
        # The full termination loop over real processes: the daemon is
        # SIGKILLed between its vote and the decision, restarts *in
        # doubt* (write locks re-acquired), and learns the outcome from
        # the client's decision retransmission — the state a coordinator
        # leaves in ``pending_decisions`` when its decision rounds go
        # unacknowledged (see tests/rt/test_resend.py for the organic
        # population over sockets).
        proc = spawn_daemon(cluster_file, scheme="TWO_PL")
        try:
            daemon_ready(cluster)
            execute_and_vote(cluster)
            proc.send_signal(signal.SIGKILL)
            proc.wait()

            proc = spawn_daemon(cluster_file, scheme="TWO_PL")
            status = daemon_ready(cluster, recovered=True)
            assert status["recovered"]["in_doubt"] == ["T1"]

            client = NetClient(cluster, scheme=CommitScheme.TWO_PL)
            client.pending_decisions["T1"] = ("COMMIT", ["S1"])
            results = client.resend_pending()
            assert results == {"T1": []}
            assert client.pending_decisions == {}
            # The in-doubt transaction was finalized: update applied,
            # locks released (a fresh read gets through immediately).
            assert site_read(cluster, "S1", "k0") == 70
        finally:
            if proc.poll() is None:
                try:
                    site_shutdown(cluster, "S1")
                    proc.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    proc.kill()
                    proc.wait()

    def test_resend_pending_times_out_against_a_dead_daemon(self, cluster):
        # No daemon at all: the retransmission round expires and the
        # decision stays pending for the next attempt.
        client = NetClient(
            cluster, scheme=CommitScheme.TWO_PL,
            commit=CommitConfig(ack_timeout=5.0, decision_retries=1),
        )
        client.pending_decisions["T1"] = ("ABORT", ["S1"])
        results = client.resend_pending()
        assert results == {"T1": ["S1"]}
        assert client.pending_decisions == {"T1": ("ABORT", ["S1"])}


class TestKillRestart2PL:
    def test_prepared_participant_restarts_in_doubt(
        self, cluster, cluster_file,
    ):
        # Under 2PL the YES vote only prepares: the kill leaves the
        # participant *in doubt*, and recovery must re-acquire its write
        # locks and block — not expose the update.
        proc = spawn_daemon(cluster_file, scheme="TWO_PL")
        try:
            daemon_ready(cluster)
            execute_and_vote(cluster)
            # The volatile store applies writes in place (the X lock is
            # what keeps them unexposed); prepared but not committed.
            assert site_read(cluster, "S1", "k0") == 70

            proc.send_signal(signal.SIGKILL)
            proc.wait()

            proc = spawn_daemon(cluster_file, scheme="TWO_PL")
            status = daemon_ready(cluster, recovered=True)
            assert status["recovered"]["in_doubt"] == ["T1"]
            assert status["recovered"]["locally_committed"] == []
            assert site_read(cluster, "S1", "k0") == 100

            ack = run_round(
                cluster, MsgType.DECISION, {"decision": "COMMIT"},
                MsgType.ACK,
            )
            assert ack.payload["compensated"] is False
            assert site_read(cluster, "S1", "k0") == 70
        finally:
            if proc.poll() is None:
                try:
                    site_shutdown(cluster, "S1")
                    proc.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    proc.kill()
                    proc.wait()
