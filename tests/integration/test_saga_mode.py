"""Integration: saga mode (Section 4's closing remark).

Sagas accept non-serializable interleavings by design; O2PC then needs no
complementary protocol.  What saga mode still guarantees — and these tests
pin down — is *semantic atomicity*: every global transaction either commits
at all its sites or is compensated/rolled back at all of them, and invariant
quantities (account totals) are preserved.
"""

from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp
from repro.txn.transaction import TxnStatus
from repro.workload import WorkloadConfig, WorkloadGenerator, banking_transfers


def test_saga_mode_is_registered():
    system = System(SystemConfig(protocol="saga"))
    assert system.marking.name == "saga"
    assert system.sites["S1"].marks_key is None


def test_saga_accepts_the_interleaving_p1_rejects():
    """The adversarial schedule commits T2 and produces a regular cycle —
    acceptable by saga semantics, zero rejections, zero retries."""
    system = System(SystemConfig(protocol="saga", n_sites=2))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k0", "dirty")]),
        SubtxnSpec("S2", [WriteOp("k0", "dirty")], vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(4.2)
        result = yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [ReadOp("k0")]),
            SubtxnSpec("S1", [ReadOp("k0")]),
        ]))
        return result

    outcome = system.env.run(system.env.process(submit_t2()))
    system.env.run()
    assert outcome.committed
    assert outcome.rejections == 0


def test_saga_keeps_semantic_atomicity():
    """Every aborted transaction ends fully compensated/rolled back at
    every site it executed at; money is conserved."""
    system = System(SystemConfig(protocol="saga", n_sites=3))
    before = sum(
        sum(site.store.snapshot().values()) for site in system.sites.values()
    )
    specs = banking_transfers(
        sorted(system.sites), n_transfers=25, abort_probability=0.3, seed=3,
    )
    system.submit_stream(specs, arrival_mean=3.0)
    system.env.run()
    after = sum(
        sum(site.store.snapshot().values()) for site in system.sites.values()
    )
    assert after == before
    aborted = [o for o in system.outcomes if not o.committed]
    assert aborted, "the workload must exercise the abort path"
    for outcome in aborted:
        for site in system.sites.values():
            status = site.ltm.status.get(outcome.txn_id)
            assert status in (
                None, TxnStatus.ABORTED, TxnStatus.COMPENSATED,
            ), f"{outcome.txn_id} left {status} at {site.site_id}"


def test_saga_throughput_matches_unprotected_baseline():
    def run(protocol):
        system = System(SystemConfig(protocol=protocol, n_sites=4))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=30, abort_probability=0.2, arrival_mean=2.0,
        ), seed=8)
        elapsed = gen.run()
        return system.metrics(elapsed).committed

    assert run("saga") == run("none")
