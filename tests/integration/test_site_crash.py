"""Integration: participant (site) crash and log-based recovery.

Covers both halves of the paper's durability story:

* a 2PL participant that crashes *after* voting YES is in doubt on
  restart: it re-acquires the transaction's locks from the log and blocks
  until the coordinator's retransmitted decision arrives (2PC's blocking
  problem surviving even the crash);
* an O2PC participant that crashes after locally committing finds the
  updates redone from the LOCAL_COMMIT record and simply awaits the
  decision, compensating on ABORT as usual.
"""

from repro.commit import CommitScheme
from repro.commit.base import CommitConfig
from repro.harness import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.storage.wal import RecordType
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def spec(txn_id="T1"):
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})]),
    ])


def quick_retry_config():
    return CommitConfig(ack_timeout=30.0, decision_retries=3)


def run_with_participant_crash(scheme, crash_at=5.6, down_for=40.0):
    """Crash S1 right after it votes (t=5) and recover it later."""
    system = System(SystemConfig(
        scheme=scheme, commit=quick_retry_config(),
    ))
    proc = system.submit(spec())
    system.failures.schedule(
        CrashPlan(site_id="S1", at=crash_at, duration=down_for)
    )
    outcome = system.env.run(proc)
    system.env.run()
    return system, outcome


def test_2pl_in_doubt_participant_recovers_and_commits():
    system, outcome = run_with_participant_crash(CommitScheme.TWO_PL)
    assert outcome.committed
    # The decision reached S1 only via retransmission after recovery.
    assert system.sites["S1"].wal.status_of("T1") is RecordType.COMMIT
    # The redo applied the update despite the crash wiping the store.
    assert system.sites["S1"].store.get("k0") == 90
    assert system.sites["S2"].store.get("k0") == 110


def test_2pl_recovered_participant_holds_locks_until_decision():
    system = System(SystemConfig(
        scheme=CommitScheme.TWO_PL, commit=quick_retry_config(),
    ))
    system.submit(spec())
    system.failures.schedule(CrashPlan(site_id="S1", at=5.6, duration=40.0))
    observed = {}

    def probe():
        # Shortly after recovery (t=45.6) the in-doubt transaction must be
        # holding its lock again, before any decision could have arrived.
        yield system.env.timeout(46.0)
        observed["holder"] = system.sites["S1"].locks.holders("k0")

    system.env.process(probe())
    system.env.run()
    assert "T1" in observed["holder"]


def test_o2pc_locally_committed_survives_crash_and_commits():
    system, outcome = run_with_participant_crash(CommitScheme.O2PC)
    assert outcome.committed
    assert system.sites["S1"].store.get("k0") == 90
    assert system.sites["S1"].wal.status_of("T1") is RecordType.COMMIT


def test_o2pc_locally_committed_crash_then_abort_compensates():
    from repro.txn.transaction import VotePolicy

    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, commit=quick_retry_config(),
    ))
    bad = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})],
                   vote=VotePolicy.FORCE_NO),
    ])
    proc = system.submit(bad)
    # S1 votes YES (locally commits) at t=5, then crashes before the abort
    # decision arrives; after recovery the retransmitted ABORT triggers the
    # compensation built from the log's before-images.
    system.failures.schedule(CrashPlan(site_id="S1", at=5.6, duration=40.0))
    outcome = system.env.run(proc)
    system.env.run()
    assert not outcome.committed
    assert system.sites["S1"].store.get("k0") == 100
    assert "CT1" in system.sites["S1"].history.committed


def test_crash_before_vote_aborts_transaction():
    """A site that crashes mid-execution never votes; the coordinator's
    vote timeout aborts the transaction and the survivor rolls back."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        commit=CommitConfig(vote_timeout=30.0, ack_timeout=30.0,
                            spawn_timeout=30.0, decision_retries=3),
    ))
    proc = system.submit(spec())
    system.failures.schedule(CrashPlan(site_id="S2", at=2.5, duration=50.0))
    outcome = system.env.run(proc)
    system.env.run()
    assert not outcome.committed
    assert system.sites["S1"].store.get("k0") == 100


def test_unrelated_transactions_proceed_during_outage():
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, n_sites=3, commit=quick_retry_config(),
    ))
    system.failures.schedule(CrashPlan(site_id="S1", at=1.0, duration=100.0))

    def late():
        yield system.env.timeout(5.0)
        result = yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [SemanticOp("deposit", "k1", {"amount": 1})]),
            SubtxnSpec("S3", [SemanticOp("withdraw", "k1", {"amount": 1})]),
        ]))
        return result

    outcome = system.env.run(system.env.process(late()))
    assert outcome.committed
    assert outcome.end_time < 30.0
