"""Integration: non-compensatable (real-action) subtransactions (Section 2).

Sites performing real actions hold their locks and delay the action until
the decision, as in distributed 2PL; the other sites of the same transaction
still release early.
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def atm_spec(vote_s2=VotePolicy.AUTO):
    """Dispense cash at S1 (real action) funded from an account at S2."""
    return GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec(
            "S1", [SemanticOp("dispense", "k0", {"amount": 40})],
            real_action=True,
        ),
        SubtxnSpec(
            "S2", [SemanticOp("withdraw", "k0", {"amount": 40})],
            vote=vote_s2,
        ),
    ])


def test_real_action_site_holds_locks_until_decision():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(atm_spec())
    assert outcome.committed
    s1_holds = [
        h for h in system.sites["S1"].locks.hold_log if h.txn_id == "T1"
    ]
    s2_holds = [
        h for h in system.sites["S2"].locks.hold_log if h.txn_id == "T1"
    ]
    # S1 (real action) held through the decision; S2 released at vote.
    assert all(h.released_at > outcome.decision_time for h in s1_holds)
    assert all(h.released_at <= outcome.decision_time for h in s2_holds)


def test_real_action_rolled_back_not_compensated_on_abort():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(atm_spec(vote_s2=VotePolicy.FORCE_NO))
    assert not outcome.committed
    # The cash never left: state-based roll-back, no compensation at S1.
    assert system.sites["S1"].store.get("k0") == 100
    assert "S1" not in outcome.compensated_sites
    assert system.participants["S1"].compensator.stats.started == 0
    # S2 simply rolled back too (it voted NO).
    assert system.sites["S2"].store.get("k0") == 100


def test_compensatable_site_still_benefits_alongside_real_action():
    """The paper: "All other sites ... can still benefit from the early
    lock release."""
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(atm_spec())
    s2_max = max(
        h.duration for h in system.sites["S2"].locks.hold_log
        if h.txn_id == "T1"
    )
    s1_max = max(
        h.duration for h in system.sites["S1"].locks.hold_log
        if h.txn_id == "T1"
    )
    assert s2_max < s1_max


def test_commit_applies_real_action():
    system = System(SystemConfig(scheme=CommitScheme.O2PC))
    outcome = system.run_transaction(atm_spec())
    assert outcome.committed
    assert system.sites["S1"].store.get("k0") == 60   # cash dispensed
    assert system.sites["S2"].store.get("k0") == 60   # account debited
