"""Integration: the correctness criterion on simulated executions.

The central demonstration of the paper: with O2PC alone (no complementary
protocol) a transaction can be serialized *after* the compensation of an
aborted transaction at one site and *before* it at another — a regular
cycle.  Protocol P1 prevents exactly this, at the cost of R1 rejections.

The interleaving (see Section 4's discussion and Figure 1):

* ``T1`` spans S1 (writes x) and S2 (writes y); S2 votes NO, so T1 aborts:
  S2 rolls back immediately (degenerate CT1), S1 — which locally committed
  and released its locks — must compensate when the ABORT decision arrives.
* ``T2`` reads y at S2 *after* CT1's roll-back there, then reads x at S1
  *before* CT1's compensating write (its read lock even delays CT1).
* Resulting edges: ``CT1 -> T2`` at S2, ``T2 -> CT1`` at S1 — a regular
  cycle through the committed transaction T2.
"""

import pytest

from repro.commit import CommitScheme
from repro.errors import CorrectnessViolation
from repro.harness import System, SystemConfig
from repro.sg import find_regular_cycle
from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp


def t1_spec():
    return GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k0", "T1-dirty")]),
        SubtxnSpec("S2", [WriteOp("k0", "T1-dirty")], vote=VotePolicy.FORCE_NO),
    ])


def t2_spec():
    return GlobalTxnSpec(txn_id="T2", subtxns=[
        SubtxnSpec("S2", [ReadOp("k0")]),
        SubtxnSpec("S1", [ReadOp("k0")]),
    ])


def run_interleaving(protocol: str):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=protocol, n_sites=2,
    ))
    system.submit(t1_spec())

    def submit_t2():
        yield system.env.timeout(4.2)
        result = yield system.submit(t2_spec())
        return result

    t2 = system.env.process(submit_t2())
    system.env.run()
    return system, t2.value


class TestWithoutProtocol:
    def test_regular_cycle_forms(self):
        system, outcome = run_interleaving("none")
        assert outcome.committed, "T2 must commit for the cycle to matter"
        cycle = find_regular_cycle(system.global_sg())
        assert cycle is not None
        assert "T2" in cycle

    def test_check_correctness_raises(self):
        system, _ = run_interleaving("none")
        with pytest.raises(CorrectnessViolation):
            system.check_correctness()

    def test_t2_read_mixed_states(self):
        """The semantic root cause: T2 saw T1's dirty write at S1 but the
        pre-T1 state at S2 (reading from CT1)."""
        system, _ = run_interleaving("none")
        s1_reads = system.sites["S1"].ltm.read_results["T2"]
        s2_reads = system.sites["S2"].ltm.read_results["T2"]
        assert s1_reads["k0"] == "T1-dirty"
        assert s2_reads["k0"] == 100


class TestWithP1:
    def test_no_regular_cycle(self):
        system, outcome = run_interleaving("P1")
        assert outcome.committed
        system.check_correctness()

    def test_r1_rejected_and_retried(self):
        system, outcome = run_interleaving("P1")
        assert outcome.rejections >= 1
        assert system.marking.rejections >= 1

    def test_t2_reads_consistent_post_compensation_state(self):
        system, _ = run_interleaving("P1")
        assert system.sites["S1"].ltm.read_results["T2"]["k0"] == 100
        assert system.sites["S2"].ltm.read_results["T2"]["k0"] == 100

    def test_udum_unmarks_after_witnesses(self):
        system, _ = run_interleaving("P1")
        # T2 executed at both of T1's sites while they were undone: UDUM1
        # held and rule R3 unmarked T1 everywhere.
        assert system.marking.directory.udum_log
        assert system.marking.sitemarks("S1") == set()
        assert system.marking.sitemarks("S2") == set()


class TestWithP2:
    def test_no_regular_cycle(self):
        system, outcome = run_interleaving("P2")
        system.check_correctness()


class TestWithSimple:
    def test_no_regular_cycle(self):
        system, outcome = run_interleaving("SIMPLE")
        system.check_correctness()


def test_no_aborts_reduces_to_serializability():
    """Section 5/7: with no global aborts the criterion is plain
    serializability, and O2PC histories satisfy it."""
    system = System(SystemConfig(scheme=CommitScheme.O2PC, n_sites=3))
    for i in range(1, 8):
        system.submit(GlobalTxnSpec(txn_id=f"T{i}", subtxns=[
            SubtxnSpec("S1", [WriteOp(f"k{i % 3}", i)]),
            SubtxnSpec("S2", [ReadOp(f"k{i % 4}")]),
        ]))
    system.env.run()
    assert all(o.committed for o in system.outcomes)
    gsg = system.global_sg()
    assert find_regular_cycle(gsg) is None
    # With no aborts there are no compensations at all: the SG must be
    # acyclic outright, not merely free of regular cycles.
    assert not gsg.nodes_of_kind(
        __import__("repro.sg.graph", fromlist=["TxnKind"]).TxnKind.COMPENSATING
    )
    system.check_correctness()
