"""Integration: O2PC adds no messages beyond standard 2PC (Sections 6-7).

"A distinctive feature of the O2PC/P1 combination is that it makes no
changes to the message transfer pattern or the structure of the standard
2PC protocol."
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def spec(txn_id, n_sites, force_no=False):
    subtxns = [
        SubtxnSpec(f"S{k}", [SemanticOp("deposit", "k0", {"amount": 1})])
        for k in range(1, n_sites + 1)
    ]
    if force_no:
        subtxns[-1].vote = VotePolicy.FORCE_NO
    return GlobalTxnSpec(txn_id=txn_id, subtxns=subtxns)


def run(scheme, protocol="none", force_no=False, n_sites=3):
    system = System(SystemConfig(
        scheme=scheme, protocol=protocol, n_sites=n_sites,
    ))
    system.run_transaction(spec("T1", n_sites, force_no))
    system.env.run()
    return system.network.counts_by_type()


def test_commit_path_message_counts_identical():
    assert run(CommitScheme.TWO_PL) == run(CommitScheme.O2PC)


def test_abort_path_message_counts_identical():
    assert run(CommitScheme.TWO_PL, force_no=True) == run(
        CommitScheme.O2PC, force_no=True
    )


def test_p1_adds_no_messages():
    assert run(CommitScheme.O2PC) == run(CommitScheme.O2PC, protocol="P1")
    assert run(CommitScheme.O2PC, force_no=True) == run(
        CommitScheme.O2PC, protocol="P1", force_no=True
    )


def test_standard_2pc_pattern_per_transaction():
    """n participants: n SUBTXN_REQ/ACK (execution), then the three 2PC
    rounds VOTE_REQ / VOTE / DECISION plus ACKs."""
    counts = run(CommitScheme.O2PC, n_sites=4)
    assert counts == {
        "SUBTXN_REQ": 4,
        "SUBTXN_ACK": 4,
        "VOTE_REQ": 4,
        "VOTE": 4,
        "DECISION": 4,
        "ACK": 4,
    }


def test_compensation_requires_no_commit_protocol():
    """Persistence of compensation means no 2PC for the global CT: an
    aborted transaction triggers no additional VOTE_REQ round."""
    counts = run(CommitScheme.O2PC, force_no=True, n_sites=3)
    assert counts["VOTE_REQ"] == 3  # one round only, for T1 itself
    assert counts["DECISION"] == 3
