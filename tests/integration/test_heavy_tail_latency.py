"""Integration: heavy-tailed (WAN-ish) message latency.

Straggling messages stretch the vote and decision rounds; the invariants
must hold regardless, and O2PC's advantage *grows* — each straggler extends
a 2PL lock hold but not an O2PC one.
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.net import ExponentialLatency
from repro.workload import WorkloadConfig, WorkloadGenerator


def run(scheme, seed=2):
    system = System(SystemConfig(
        scheme=scheme, n_sites=3, keys_per_site=12,
        latency=ExponentialLatency(base=1.0, jitter=2.0),
        seed=seed,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=30, arrival_mean=6.0, read_fraction=0.4,
    ), seed=seed)
    elapsed = gen.run()
    return system, system.metrics(elapsed)


def test_all_transactions_terminate():
    system, report = run(CommitScheme.O2PC)
    assert report.committed + report.aborted == 30
    system.check_correctness()


def test_o2pc_advantage_under_stragglers():
    _, r2pl = run(CommitScheme.TWO_PL)
    _, ro2pc = run(CommitScheme.O2PC)
    assert ro2pc.mean_lock_hold < r2pl.mean_lock_hold
    # The *max* hold shows the stragglers: a late decision pins a 2PL lock.
    assert ro2pc.max_lock_hold <= r2pl.max_lock_hold


def test_tail_raises_latency_over_deterministic_network():
    """A transaction sums ~a dozen latency draws, so its own distribution
    concentrates (CLT) — the tail shows up as a higher *mean* relative to
    a deterministic network with the same base."""
    from repro.net import LatencyModel

    tail_system, tail_report = run(CommitScheme.O2PC)
    flat = System(SystemConfig(
        scheme=CommitScheme.O2PC, n_sites=3, keys_per_site=12,
        latency=LatencyModel(base=1.0), seed=2,
    ))
    gen = WorkloadGenerator(flat, WorkloadConfig(
        n_transactions=30, arrival_mean=6.0, read_fraction=0.4,
    ), seed=2)
    elapsed = gen.run()
    flat_report = flat.metrics(elapsed)
    assert tail_report.mean_latency > 1.5 * flat_report.mean_latency
    # ... and still shows per-transaction spread.
    latencies = [o.latency for o in tail_system.outcomes]
    assert max(latencies) > 1.25 * min(latencies)
