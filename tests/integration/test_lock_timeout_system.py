"""Integration: lock-wait timeouts at the system level.

With ``lock_timeout`` configured, a cross-site deadlock resolves in one
lock-timeout period instead of waiting out the coordinator's (much longer)
spawn timeout — and the loser is unwound cleanly.
"""

from repro.commit import CommitConfig, CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def crossing_specs():
    """T1 locks k0@S1 then wants k0@S2; T2 the other way around."""
    t1 = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("deposit", "k0", {"amount": 1})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 1})]),
    ])
    t2 = GlobalTxnSpec(txn_id="T2", subtxns=[
        SubtxnSpec("S2", [SemanticOp("deposit", "k1", {"amount": 1})]),
        SubtxnSpec("S1", [SemanticOp("deposit", "k1", {"amount": 1})]),
    ])
    # Same keys, opposite site order -> distributed deadlock.
    t2.subtxns[0].ops[0] = SemanticOp("deposit", "k0", {"amount": 1})
    t2.subtxns[1].ops[0] = SemanticOp("deposit", "k0", {"amount": 1})
    return t1, t2


def run(lock_timeout):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC,
        lock_timeout=lock_timeout,
        commit=CommitConfig(spawn_timeout=120.0),
    ))
    t1, t2 = crossing_specs()
    system.submit(t1)

    def late():
        # Staggered: identical timeouts on simultaneous arrivals would
        # abort both (symmetric livelock); offset arrivals give a winner.
        yield system.env.timeout(0.5)
        yield system.submit(t2)

    system.env.process(late())
    system.env.run()
    return system


def test_lock_timeout_resolves_distributed_deadlock_quickly():
    """Timeout resolution is fast but blunt: with symmetric timeouts both
    deadlocked transactions abort (their block times differ by less than
    the abort-propagation delay), yet the system is unwedged within the
    timeout horizon instead of the coordinator's 120-unit spawn timeout,
    and a follow-up transaction sails through."""
    system = run(lock_timeout=10.0)
    assert len(system.outcomes) == 2
    assert max(o.end_time for o in system.outcomes) < 60.0
    # Every lock is free again...
    for site in system.sites.values():
        for txn in ("T1", "T2"):
            assert site.locks.locks_of(txn) == {}
    # ...so a retry succeeds immediately.
    t3 = GlobalTxnSpec(txn_id="T3", subtxns=[
        SubtxnSpec("S1", [SemanticOp("deposit", "k0", {"amount": 1})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 1})]),
    ])
    outcome = system.run_transaction(t3)
    assert outcome.committed
    system.env.run()
    system.check_correctness()


def test_without_lock_timeout_coordinator_timeout_resolves():
    system = run(lock_timeout=None)
    assert len(system.outcomes) == 2
    assert max(o.end_time for o in system.outcomes) > 100.0
    system.check_correctness()


def test_values_consistent_after_timeout_abort():
    system = run(lock_timeout=10.0)
    committed = sum(1 for o in system.outcomes if o.committed)
    total = (
        system.sites["S1"].store.get("k0")
        + system.sites["S2"].store.get("k0")
    )
    assert total == 200 + 2 * committed
