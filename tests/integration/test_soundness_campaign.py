"""Soundness campaign: the headline guarantees over a run matrix.

For every (scheme, protocol, abort rate, seed) cell:

* **atomicity of compensation** — nobody reads both worlds of any
  transaction (the semantic guarantee; the unprotected baseline can
  violate it — that is the protocols' reason to exist — so it is
  excluded from the matrix);
* **effective correctness** — no regular cycle through a committed
  transaction under any marking protocol;
* **no zombie resources** — every lock is released by run end;
* **conservation** — on transfer-structured workloads, semantic atomicity
  keeps the total of all numeric values invariant (checked in its own
  test: the random generator workload moves unequal amounts by design).

Set ``REPRO_CAMPAIGN=1`` to multiply the seed range by 5 (slow; used for
the pre-release sweep recorded in EXPERIMENTS.md).
"""

import os

import pytest

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.sg import check_atomicity_of_compensation, find_regular_cycle
from repro.txn.transaction import TxnStatus
from repro.workload import WorkloadConfig, WorkloadGenerator

SEEDS = range(1, 16 if os.environ.get("REPRO_CAMPAIGN") else 4)


def run_cell(protocol, abort_p, seed):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=protocol,
        n_sites=4, keys_per_site=10, seed=seed,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=40, abort_probability=abort_p,
        read_fraction=0.4, arrival_mean=2.0, zipf_theta=0.5,
        locals_per_global=0.3,
    ), seed=seed)
    gen.run()
    return system


@pytest.mark.parametrize("protocol", ["P1", "P2", "SIMPLE"])
@pytest.mark.parametrize("abort_p", [0.0, 0.2])
def test_campaign_cell(protocol, abort_p):
    for seed in SEEDS:
        system = run_cell(protocol, abort_p, seed)
        label = f"{protocol} p={abort_p} seed={seed}"

        cycle = find_regular_cycle(
            system.global_sg(), system.effective_regular_nodes()
        )
        assert cycle is None, f"{label}: regular cycle {cycle}"

        report = check_atomicity_of_compensation(system.global_history())
        assert report.ok, f"{label}: atomicity {report.violations}"

        for site in system.sites.values():
            for txn, status in site.ltm.status.items():
                if status in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
                    assert site.locks.locks_of(txn) == {}, (
                        f"{label}: zombie locks of {txn} at {site.site_id}"
                    )


@pytest.mark.parametrize("protocol", ["P1", "P2", "SIMPLE", "saga"])
def test_campaign_conservation(protocol):
    """Semantic atomicity conserves value on transfer-structured workloads
    (each transaction moves an amount; aborts net to zero through
    compensation), for every protocol including saga mode."""
    from repro.workload import banking_transfers

    for seed in SEEDS:
        system = System(SystemConfig(
            scheme=CommitScheme.O2PC, protocol=protocol,
            n_sites=3, seed=seed,
        ))
        before = sum(
            value
            for site in system.sites.values()
            for value in site.store.snapshot().values()
            if isinstance(value, int)
        )
        specs = banking_transfers(
            sorted(system.sites), n_transfers=25,
            abort_probability=0.25, seed=seed,
        )
        system.env.run(system.submit_stream(specs, arrival_mean=2.5))
        system.env.run()
        after = sum(
            value
            for site in system.sites.values()
            for value in site.store.snapshot().values()
            if isinstance(value, int)
        )
        assert after == before, (
            f"{protocol} seed={seed}: {before} -> {after}"
        )
