"""Integration: protocol P2 on the full system.

P2 is the dual of P1: it tracks *locally-committed* markings, which exist
during every transaction's vote-to-decision window, so P2 restricts mixing
"saw the exposed state" with "did not" — paying some cost even without
aborts, but needing no UDUM machinery (decision messages clear its marks).
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, ReadOp, SemanticOp, SubtxnSpec, VotePolicy
from repro.workload import WorkloadConfig, WorkloadGenerator


def test_p2_prevents_the_adversarial_interleaving():
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P2", n_sites=2,
    ))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("set", "k0", {"value": "dirty"})]),
        SubtxnSpec("S2", [SemanticOp("set", "k0", {"value": "dirty"})],
                   vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(4.2)
        yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [ReadOp("k0")]),
            SubtxnSpec("S1", [ReadOp("k0")]),
        ]))

    system.env.process(submit_t2())
    system.env.run()
    system.check_correctness()


def test_p2_marks_clear_on_commit_decision():
    """After a clean commit, no LC marks survive anywhere."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P2", n_sites=3,
    ))
    outcome = system.run_transaction(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("deposit", "k0", {"amount": 1})]),
        SubtxnSpec("S2", [SemanticOp("withdraw", "k0", {"amount": 1})]),
    ]))
    assert outcome.committed
    for site_id in system.sites:
        assert system.directory.lc_marks(site_id) == set()


def test_p2_retries_through_the_vote_window():
    """A transaction that collides with another's LC window is rejected
    retriably and succeeds once the decision lands."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P2", n_sites=3,
    ))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("deposit", "k1", {"amount": 1})]),
        SubtxnSpec("S2", [SemanticOp("withdraw", "k1", {"amount": 1})]),
    ]))

    def submit_t2():
        # Arrive inside T1's vote-to-decision window at S1 (t in [5, 7.5]),
        # spanning S1 (LC wrt T1) and S3 (where T1 never runs).
        yield system.env.timeout(4.5)
        result = yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S1", [ReadOp("k2")]),
            SubtxnSpec("S3", [ReadOp("k2")]),
        ]))
        return result

    outcome = system.env.run(system.env.process(submit_t2()))
    system.env.run()
    # T2 either waited out the window via retries or slipped before it —
    # both commit; the system stays correct either way.
    assert outcome.committed
    system.check_correctness()


def test_p2_workload_correct_under_aborts():
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P2", n_sites=4, keys_per_site=10,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=40, abort_probability=0.25,
        read_fraction=0.5, arrival_mean=2.5, zipf_theta=0.4,
    ), seed=5)
    elapsed = gen.run()
    report = system.metrics(elapsed)
    assert report.committed > 0
    assert report.aborted > 0
    system.check_correctness()
