"""Unit tests for timeout-based lock waits."""

import pytest

from repro.errors import LockTimeout
from repro.locking import LockManager, LockMode
from repro.sim import Environment


def test_blocked_request_times_out():
    env = Environment()
    lm = LockManager(env, "S1", lock_timeout=5.0)
    lm.acquire("T1", "x", LockMode.X)
    failed = {}

    def waiter():
        try:
            yield lm.acquire("T2", "x", LockMode.X)
        except LockTimeout:
            failed["at"] = env.now

    env.process(waiter())
    env.run()
    assert failed["at"] == 5.0
    assert lm.queue_length("x") == 0


def test_grant_before_timeout_wins():
    env = Environment()
    lm = LockManager(env, "S1", lock_timeout=5.0)
    lm.acquire("T1", "x", LockMode.X)
    got = {}

    def waiter():
        yield lm.acquire("T2", "x", LockMode.X)
        got["at"] = env.now

    def releaser():
        yield env.timeout(2.0)
        lm.release("T1", "x")

    env.process(waiter())
    env.process(releaser())
    env.run()
    assert got["at"] == 2.0


def test_timeout_unblocks_queue_behind():
    env = Environment()
    lm = LockManager(env, "S1", lock_timeout=3.0)
    lm.acquire("T1", "x", LockMode.S)
    outcomes = {}

    def writer():
        try:
            yield lm.acquire("T2", "x", LockMode.X)
        except LockTimeout:
            outcomes["T2"] = "timeout"

    def reader():
        yield env.timeout(1.0)
        yield lm.acquire("T3", "x", LockMode.S)
        outcomes["T3"] = env.now

    env.process(writer())
    env.process(reader())
    env.run()
    # T2's queued X blocked T3's S (no barging); once T2 timed out, T3's
    # compatible request was granted immediately.
    assert outcomes["T2"] == "timeout"
    assert outcomes["T3"] == 3.0


def test_timeout_breaks_undetectable_deadlock_shape():
    """Two managers (two sites) cannot see a cross-site cycle; timeouts
    resolve it."""
    env = Environment()
    lm_a = LockManager(env, "A", lock_timeout=4.0)
    lm_b = LockManager(env, "B", lock_timeout=4.0)
    events = []

    def t1():
        yield lm_a.acquire("T1", "x", LockMode.X)
        yield env.timeout(1.0)
        try:
            yield lm_b.acquire("T1", "y", LockMode.X)
            events.append("T1-got-both")
        except LockTimeout:
            lm_a.release_all("T1")
            events.append("T1-timeout")

    def t2():
        yield lm_b.acquire("T2", "y", LockMode.X)
        yield env.timeout(1.0)
        try:
            yield lm_a.acquire("T2", "x", LockMode.X)
            events.append("T2-got-both")
        except LockTimeout:
            lm_b.release_all("T2")
            events.append("T2-timeout")

    env.process(t1())
    env.process(t2())
    env.run()
    assert sorted(events) == ["T1-timeout", "T2-timeout"]


def test_no_timeout_by_default():
    env = Environment()
    lm = LockManager(env, "S1")
    lm.acquire("T1", "x", LockMode.X)
    ev = lm.acquire("T2", "x", LockMode.X)
    env.run(until=1000.0)
    assert not ev.triggered  # waits forever without a timeout


def test_prepare_releases_read_locks_only():
    """Section 2: shared locks may be released at VOTE-REQ time; exclusive
    locks are held until the decision."""
    from repro.txn import ReadOp, Site, WriteOp

    env = Environment()
    site = Site(env, "S1")
    site.load({"r": 1, "w": 2})

    def txn():
        site.ltm.begin("T1")
        yield from site.ltm.run_ops("T1", [ReadOp("r"), WriteOp("w", 9)])
        site.ltm.prepare("T1")

    env.run(env.process(txn()))
    assert site.locks.locks_of("T1") == {"w": LockMode.X}
