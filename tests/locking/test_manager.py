"""Unit tests for the lock manager."""

import pytest

from repro.errors import (
    DeadlockDetected,
    LockNotHeld,
    TwoPhaseViolation,
)
from repro.locking import LockManager, LockMode
from repro.sim import Environment


def make_lm(**kwargs):
    env = Environment()
    return env, LockManager(env, "S1", **kwargs)


def grab(env, lm, txn, key, mode):
    """Acquire synchronously; returns True if granted immediately."""
    ev = lm.acquire(txn, key, mode)
    return ev.triggered


def test_immediate_grant_on_free_key():
    env, lm = make_lm()
    assert grab(env, lm, "T1", "x", LockMode.X)
    assert lm.held_mode("T1", "x") is LockMode.X


def test_shared_locks_coexist():
    env, lm = make_lm()
    assert grab(env, lm, "T1", "x", LockMode.S)
    assert grab(env, lm, "T2", "x", LockMode.S)
    assert lm.holders("x") == {"T1": LockMode.S, "T2": LockMode.S}


def test_exclusive_blocks_shared():
    env, lm = make_lm()
    assert grab(env, lm, "T1", "x", LockMode.X)
    assert not grab(env, lm, "T2", "x", LockMode.S)
    assert lm.queue_length("x") == 1


def test_reentrant_same_mode():
    env, lm = make_lm()
    assert grab(env, lm, "T1", "x", LockMode.X)
    assert grab(env, lm, "T1", "x", LockMode.X)
    assert grab(env, lm, "T1", "x", LockMode.S)  # weaker re-request ok


def test_release_wakes_waiter_in_fifo_order():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.X)
    ev2 = lm.acquire("T2", "x", LockMode.X)
    ev3 = lm.acquire("T3", "x", LockMode.X)
    lm.release("T1", "x")
    assert ev2.triggered and not ev3.triggered
    lm.release("T2", "x")
    assert ev3.triggered


def test_release_grants_multiple_shared_waiters():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.X)
    s1 = lm.acquire("T2", "x", LockMode.S)
    s2 = lm.acquire("T3", "x", LockMode.S)
    lm.release("T1", "x")
    assert s1.triggered and s2.triggered


def test_no_barging_past_queued_conflicting_request():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.S)
    waiting_x = lm.acquire("T2", "x", LockMode.X)
    late_s = lm.acquire("T3", "x", LockMode.S)
    # T3's S is compatible with T1's S but must not overtake T2's queued X.
    assert not waiting_x.triggered
    assert not late_s.triggered
    lm.release("T1", "x")
    assert waiting_x.triggered
    assert not late_s.triggered
    lm.release("T2", "x")
    assert late_s.triggered


def test_upgrade_sole_holder_immediate():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.S)
    ev = lm.acquire("T1", "x", LockMode.X)
    assert ev.triggered
    assert lm.held_mode("T1", "x") is LockMode.X


def test_upgrade_waits_for_other_readers_with_priority():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.S)
    lm.acquire("T2", "x", LockMode.S)
    upgrade = lm.acquire("T1", "x", LockMode.X)
    other = lm.acquire("T3", "x", LockMode.X)
    assert not upgrade.triggered
    lm.release("T2", "x")
    assert upgrade.triggered
    assert not other.triggered


def test_release_unheld_raises():
    env, lm = make_lm()
    with pytest.raises(LockNotHeld):
        lm.release("T1", "x")


def test_release_all_returns_keys_sorted():
    env, lm = make_lm()
    for key in ("b", "a", "c"):
        lm.acquire("T1", key, LockMode.X)
    assert lm.release_all("T1") == ["a", "b", "c"]
    assert lm.locks_of("T1") == {}


def test_2pl_enforcement():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.X)
    lm.release("T1", "x")
    with pytest.raises(TwoPhaseViolation):
        lm.acquire("T1", "y", LockMode.S)
    lm.forget("T1")
    assert grab(env, lm, "T1", "y", LockMode.S)


def test_2pl_enforcement_can_be_disabled():
    env, lm = make_lm(enforce_2pl=False)
    lm.acquire("T1", "x", LockMode.X)
    lm.release("T1", "x")
    assert grab(env, lm, "T1", "y", LockMode.S)


def test_deadlock_detection_fails_victim_request():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.X)
    lm.acquire("T2", "y", LockMode.X)
    ev1 = lm.acquire("T1", "y", LockMode.X)  # T1 waits for T2
    ev2 = lm.acquire("T2", "x", LockMode.X)  # T2 waits for T1 -> cycle
    # Youngest (T2) is the victim: its request fails.
    assert ev2.triggered and not ev2.ok
    assert isinstance(ev2.value, DeadlockDetected)
    assert ev2.value.victim == "T2"
    assert not ev1.triggered
    ev2.defused = True
    # Victim aborts: releases its locks, survivor proceeds.
    lm.release_all("T2")
    assert ev1.triggered and ev1.ok


def test_deadlock_cycle_recorded():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.X)
    lm.acquire("T2", "y", LockMode.X)
    lm.acquire("T1", "y", LockMode.X)
    ev = lm.acquire("T2", "x", LockMode.X)
    ev.defused = True
    assert len(lm.detector.detected) == 1
    cycle = lm.detector.detected[0]
    assert set(cycle) == {"T1", "T2"}


def test_cancel_removes_queued_request():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.X)
    lm.acquire("T2", "x", LockMode.X)
    assert lm.cancel("T2") == 1
    assert lm.queue_length("x") == 0
    lm.release("T1", "x")
    assert lm.holders("x") == {}


def test_cancel_unblocks_waiters_behind():
    env, lm = make_lm()
    lm.acquire("T1", "x", LockMode.S)
    lm.acquire("T2", "x", LockMode.X)
    ev3 = lm.acquire("T3", "x", LockMode.S)
    assert not ev3.triggered
    lm.cancel("T2")
    assert ev3.triggered


def test_hold_log_records_durations():
    env, lm = make_lm()

    def proc(env):
        yield lm.acquire("T1", "x", LockMode.X)
        yield env.timeout(5)
        lm.release("T1", "x")

    env.run(env.process(proc(env)))
    assert len(lm.hold_log) == 1
    rec = lm.hold_log[0]
    assert (rec.txn_id, rec.key, rec.mode) == ("T1", "x", LockMode.X)
    assert rec.duration == 5.0


def test_wait_log_records_block_time():
    env, lm = make_lm()

    def holder(env):
        yield lm.acquire("T1", "x", LockMode.X)
        yield env.timeout(4)
        lm.release("T1", "x")

    def waiter(env):
        yield env.timeout(1)
        yield lm.acquire("T2", "x", LockMode.X)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    waits = {t: w for t, _, w in lm.wait_log}
    assert waits["T1"] == 0.0
    assert waits["T2"] == 3.0


def test_blocking_process_integration():
    env, lm = make_lm()
    order = []

    def first(env):
        yield lm.acquire("T1", "x", LockMode.X)
        order.append(("T1-got", env.now))
        yield env.timeout(10)
        lm.release("T1", "x")

    def second(env):
        yield env.timeout(1)
        yield lm.acquire("T2", "x", LockMode.X)
        order.append(("T2-got", env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert order == [("T1-got", 0.0), ("T2-got", 10.0)]
