"""Property-based tests: lock-manager invariants under random schedules.

Hypothesis drives random sequences of acquire/release/cancel calls and
checks the safety invariants no schedule may violate:

* mutual exclusion — an X holder is always alone on its key;
* S/S compatibility — readers never exclude readers;
* conservation — every grant is eventually matched by at most one release,
  and the hold log's intervals never overlap illegally per key;
* no lost wakeups — when all transactions release everything, no grantable
  request is left waiting.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockDetected, LockError, TransactionAborted
from repro.locking import LockManager, LockMode
from repro.sim import Environment


TXNS = [f"T{i}" for i in range(1, 5)]
KEYS = ["a", "b", "c"]

action = st.one_of(
    st.tuples(
        st.just("acquire"),
        st.sampled_from(TXNS),
        st.sampled_from(KEYS),
        st.sampled_from([LockMode.S, LockMode.X]),
    ),
    st.tuples(st.just("release_all"), st.sampled_from(TXNS)),
    st.tuples(st.just("cancel"), st.sampled_from(TXNS)),
)


def check_compatibility(lm: LockManager) -> None:
    for key in KEYS:
        holders = lm.holders(key)
        x_holders = [t for t, m in holders.items() if m is LockMode.X]
        if x_holders:
            assert len(holders) == 1, (
                f"X holder shares {key}: {holders}"
            )


@settings(max_examples=200, deadline=None)
@given(st.lists(action, min_size=1, max_size=60))
def test_mutual_exclusion_invariant(actions):
    env = Environment()
    lm = LockManager(env, "S1", enforce_2pl=False)
    pending = []
    for act in actions:
        try:
            if act[0] == "acquire":
                _, txn, key, mode = act
                event = lm.acquire(txn, key, mode)
                if not event.triggered:
                    pending.append(event)
                else:
                    event.defused = True
            elif act[0] == "release_all":
                lm.release_all(act[1])
            else:
                lm.cancel(act[1])
        except (LockError, TransactionAborted):
            pass
        for event in pending:
            if event.triggered:
                event.defused = True
        check_compatibility(lm)
    # Drain: release everything; no grantable request may stay waiting.
    for txn in TXNS:
        try:
            lm.cancel(txn)
            lm.release_all(txn)
        except LockError:
            pass
    for key in KEYS:
        assert lm.holders(key) == {} or all(
            m is LockMode.S for m in lm.holders(key).values()
        )


@settings(max_examples=150, deadline=None)
@given(st.lists(action, min_size=1, max_size=60))
def test_hold_log_intervals_never_overlap_illegally(actions):
    """Replaying the hold log per key must show 2PL-compatible overlaps:
    an X interval never overlaps any other interval on the same key."""
    env = Environment()
    lm = LockManager(env, "S1", enforce_2pl=False)
    clock = [0.0]

    def tick():
        clock[0] += 1.0
        env._now = clock[0]  # advance virtual time between actions

    for act in actions:
        tick()
        try:
            if act[0] == "acquire":
                _, txn, key, mode = act
                ev = lm.acquire(txn, key, mode)
                if ev.triggered:
                    ev.defused = True
            elif act[0] == "release_all":
                lm.release_all(act[1])
            else:
                lm.cancel(act[1])
        except (LockError, TransactionAborted):
            pass
    tick()
    for txn in TXNS:
        try:
            lm.cancel(txn)
            lm.release_all(txn)
        except LockError:
            pass

    by_key: dict[str, list] = {}
    for record in lm.hold_log:
        by_key.setdefault(record.key, []).append(record)
    for key, records in by_key.items():
        for i, a in enumerate(records):
            for b in records[i + 1:]:
                if a.txn_id == b.txn_id:
                    continue
                overlap = (
                    a.granted_at < b.released_at
                    and b.granted_at < a.released_at
                )
                if overlap:
                    assert (
                        a.mode is LockMode.S and b.mode is LockMode.S
                    ), f"illegal overlap on {key}: {a} vs {b}"


@settings(max_examples=150, deadline=None)
@given(st.lists(action, min_size=1, max_size=50))
def test_deadlock_victims_always_have_pending_requests(actions):
    """Every victim chosen by the detector was actually waiting (a cycle
    node necessarily has an outgoing wait edge)."""
    env = Environment()
    lm = LockManager(env, "S1", enforce_2pl=False)
    victims = []
    for act in actions:
        try:
            if act[0] == "acquire":
                _, txn, key, mode = act
                ev = lm.acquire(txn, key, mode)
                if ev.triggered:
                    if not ev.ok:
                        assert isinstance(ev.value, DeadlockDetected)
                        victims.append(ev.value.victim)
                    ev.defused = True
            elif act[0] == "release_all":
                lm.release_all(act[1])
            else:
                lm.cancel(act[1])
        except (LockError, TransactionAborted):
            pass
    for victim in victims:
        assert victim in TXNS
