"""Unit tests for the waits-for graph and deadlock detector."""

from hypothesis import given, strategies as st

from repro.locking import DeadlockDetector, WaitsForGraph


def test_no_cycle_in_dag():
    g = WaitsForGraph()
    g.add_wait("T1", ["T2"])
    g.add_wait("T2", ["T3"])
    assert g.find_cycle() is None


def test_two_cycle_found():
    g = WaitsForGraph()
    g.add_wait("T1", ["T2"])
    g.add_wait("T2", ["T1"])
    cycle = g.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {"T1", "T2"}


def test_self_wait_ignored():
    g = WaitsForGraph()
    g.add_wait("T1", ["T1"])
    assert g.find_cycle() is None
    assert g.edges() == []


def test_find_cycle_from_start_only_reachable():
    g = WaitsForGraph()
    g.add_wait("T1", ["T2"])
    g.add_wait("T2", ["T1"])
    g.add_wait("T9", ["T8"])
    assert g.find_cycle(start="T9") is None
    assert g.find_cycle(start="T1") is not None


def test_three_cycle():
    g = WaitsForGraph()
    g.add_wait("T1", ["T2"])
    g.add_wait("T2", ["T3"])
    g.add_wait("T3", ["T1"])
    cycle = g.find_cycle(start="T3")
    assert set(cycle) == {"T1", "T2", "T3"}


def test_remove_waiter_breaks_cycle():
    g = WaitsForGraph()
    g.add_wait("T1", ["T2"])
    g.add_wait("T2", ["T1"])
    g.remove_waiter("T2")
    assert g.find_cycle() is None


def test_remove_transaction_removes_incoming_edges():
    g = WaitsForGraph()
    g.add_wait("T1", ["T2"])
    g.add_wait("T3", ["T2"])
    g.remove_transaction("T2")
    assert g.edges() == []


def test_detector_youngest_victim_policy():
    assert DeadlockDetector.youngest_victim(["T1", "T7", "T3", "T1"]) == "T7"


def test_detector_records_and_names_victim():
    g = WaitsForGraph()
    det = DeadlockDetector(g)
    g.add_wait("T1", ["T2"])
    assert det.check("T1") is None
    g.add_wait("T2", ["T1"])
    assert det.check("T2") == "T2"
    assert len(det.detected) == 1


def test_detector_custom_policy():
    g = WaitsForGraph()
    det = DeadlockDetector(g, victim_policy=min)
    g.add_wait("T1", ["T2"])
    g.add_wait("T2", ["T1"])
    assert det.check("T2") == "T1"


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=8),
            st.integers(min_value=0, max_value=8),
        ),
        max_size=30,
    )
)
def test_found_cycle_is_actually_a_cycle(edges):
    """Property: any cycle reported must follow real edges and close."""
    g = WaitsForGraph()
    for a, b in edges:
        g.add_wait(f"T{a}", [f"T{b}"])
    cycle = g.find_cycle()
    if cycle is not None:
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 3  # at least A -> B -> A
        for src, dst in zip(cycle, cycle[1:]):
            assert dst in g.successors(src)
