"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_demo_commits_and_audits(capsys):
    code, out = run_cli(capsys, "demo")
    assert code == 0
    assert "COMMIT" in out
    assert "correctness criterion: OK" in out
    assert "restored" in out


def test_demo_protocol_choice(capsys):
    code, out = run_cli(capsys, "demo", "--protocol", "none")
    assert code == 0


def test_drill_shows_both_schemes(capsys):
    code, out = run_cli(capsys, "drill", "--outage", "25")
    assert code == 0
    assert "== 2PL" in out and "== O2PC" in out
    assert out.count("locks at S1") == 2


def test_audit_none_flags_cycle(capsys):
    code, out = run_cli(capsys, "audit", "--protocol", "none")
    assert code == 0
    assert "regular cycle" in out
    assert "INCORRECT" in out


def test_audit_p1_is_clean(capsys):
    code, out = run_cli(capsys, "audit", "--protocol", "P1")
    assert code == 0
    assert "no regular cycle" in out


def test_sweep_prints_table(capsys):
    code, out = run_cli(capsys, "sweep", "--transactions", "10")
    assert code == 0
    assert "abort_p" in out
    assert "thru_o2pc" in out


def test_trace_is_deterministic(capsys):
    code1, out1 = run_cli(capsys, "trace", "--seed", "7",
                          "--transactions", "6")
    code2, out2 = run_cli(capsys, "trace", "--seed", "7",
                          "--transactions", "6")
    assert code1 == code2 == 0
    assert out1 == out2
    lines = out1.splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    assert records[0]["kind"] == "txn.submit"
    assert [r["seq"] for r in records] == list(range(len(records)))


def test_trace_seed_changes_stream(capsys):
    _, out1 = run_cli(capsys, "trace", "--seed", "7", "--transactions", "6")
    _, out2 = run_cli(capsys, "trace", "--seed", "8", "--transactions", "6")
    assert out1 != out2


def test_trace_writes_file(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code, out = run_cli(capsys, "trace", "--transactions", "4",
                        "--out", str(path))
    assert code == 0
    assert f"events -> {path}" in out
    lines = path.read_text().splitlines()
    assert lines
    assert str(len(lines)) in out


def test_metrics_summary(capsys):
    code, out = run_cli(capsys, "metrics", "--transactions", "8")
    assert code == 0
    assert "== metrics ==" in out
    for name in ("committed", "aborted", "p99_latency", "messages_total"):
        assert name in out


def test_metrics_watch_prints_snapshots(capsys):
    code, out = run_cli(capsys, "metrics", "--watch",
                        "--transactions", "8", "--window", "20")
    assert code == 0
    assert "t=" in out
    assert "p50=" in out
    assert "== metrics ==" in out


def test_metrics_rejects_nonpositive_window():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["metrics", "--window", "0"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_writes_artifacts(tmp_path, capsys):
    code, out = run_cli(capsys, "report", "--out", str(tmp_path))
    assert code == 0
    report = (tmp_path / "report.md").read_text()
    assert "CLAIM-LOCK" in report
    assert "CLAIM-BLOCK" in report
    assert "CLAIM-MSG" in report
    assert (tmp_path / "claim_lock.json").exists()
    from repro.harness.experiment import load_results

    rows = load_results(str(tmp_path / "claim_block.json"))
    assert all(
        r.measures["max_hold_2pl"] > r.measures["max_hold_o2pc"]
        for r in rows
    )


class TestSharedParents:
    """--seed/--protocol/--backend are one definition shared by every verb.

    The per-verb defaults below pin the argparse pitfall this layout has:
    ``set_defaults`` mutates ``action.default`` on the shared action
    object, so parents must be fresh parser instances per subcommand or
    the last verb's default leaks into all of them.
    """

    @pytest.mark.parametrize("verb,expected", [
        (["demo"], {"protocol": "P1"}),
        (["audit"], {"protocol": "none"}),
        (["trace"], {"protocol": "P1", "backend": "sim"}),
        (["metrics"], {"protocol": "P1", "backend": "sim"}),
        (["check"], {"protocol": "P1", "backend": "sim"}),
        (["bench"], {"backend": "sim"}),
        (["serve", "S1", "--cluster", "c.json"],
         {"protocol": "none", "backend": "net"}),
        (["client", "--cluster", "c.json"],
         {"protocol": "none", "backend": "net"}),
    ])
    def test_per_verb_defaults_do_not_leak(self, verb, expected):
        args = build_parser().parse_args(verb)
        for key, value in expected.items():
            assert getattr(args, key) == value, (verb, key)

    def test_shared_options_accepted_after_any_verb(self):
        args = build_parser().parse_args(
            ["check", "--seed", "9", "--protocol", "P2", "--backend", "sim"]
        )
        assert args.seed == 9
        assert args.protocol == "P2"
        assert args.backend == "sim"

    @pytest.mark.parametrize("verb", [
        ["check", "--smoke"],
        ["bench", "--smoke"],
        ["trace"],
    ])
    def test_sim_only_verbs_reject_net_backend(self, verb, capsys):
        code = main([*verb, "--backend", "net"])
        assert code == 2
        err = capsys.readouterr().err
        assert "backend 'net' is not supported" in err
        assert "repro serve" in err

    def test_metrics_net_backend_requires_a_cluster_file(self, capsys):
        # metrics does support the net backend (it aggregates a live
        # cluster's --obs streams), but only with a cluster file.
        code = main(["metrics", "--backend", "net"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--cluster" in err
        assert "serve --obs" in err

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--backend", "carrier"])


class TestServeClientCli:
    def test_serve_requires_cluster(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "S1"])

    def test_client_status_unreachable_daemon_fails_cleanly(
        self, tmp_path, capsys,
    ):
        from repro.rt.config import local_cluster

        cluster_file = str(tmp_path / "cluster.json")
        local_cluster(["S1", "S2"], data_dir=str(tmp_path)).save(cluster_file)
        code = main(["client", "--cluster", cluster_file, "--status", "S1"])
        assert code == 1
        assert "cannot reach S1" in capsys.readouterr().err

    def test_client_transfer_needs_two_sites(self, tmp_path, capsys):
        from repro.rt.config import local_cluster

        cluster_file = str(tmp_path / "cluster.json")
        local_cluster(["S1"], data_dir=str(tmp_path)).save(cluster_file)
        code = main(["client", "--cluster", cluster_file])
        assert code == 2
        assert "at least two sites" in capsys.readouterr().err
