"""Unit tests for the FIFO Store."""

from repro.sim import Environment, Store


def test_put_then_get_immediate():
    env = Environment()
    store = Store(env)
    store.put("x")

    def proc(env):
        item = yield store.get()
        return item

    assert env.run(env.process(proc(env))) == "x"


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(5)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(5.0, "late")]


def test_fifo_item_order():
    env = Environment()
    store = Store(env)
    for i in range(3):
        store.put(i)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.run(env.process(consumer(env)))
    assert got == [0, 1, 2]


def test_fifo_getter_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1)
        store.put("a")
        store.put("b")

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    env.process(producer(env))
    env.run()
    assert got == [("first", "a"), ("second", "b")]


def test_len_and_items_snapshot():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_clear_drops_and_returns_items():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert store.clear() == ["a", "b"]
    assert len(store) == 0


def test_cancel_get_withdraws_waiter():
    env = Environment()
    store = Store(env)
    getter = store.get()
    assert not getter.triggered
    store.cancel_get(getter)
    store.put("x")
    # The cancelled getter must not consume the item.
    assert store.items == ["x"]
    assert not getter.triggered


def test_cancel_get_of_triggered_event_is_noop():
    env = Environment()
    store = Store(env)
    store.put("x")
    getter = store.get()
    assert getter.triggered
    store.cancel_get(getter)  # no error, nothing to withdraw
    assert getter.value == "x"


def test_cancelled_getter_does_not_block_later_getters():
    env = Environment()
    store = Store(env)
    stale = store.get()
    store.cancel_get(stale)
    live = store.get()
    store.put("y")
    assert live.triggered and live.value == "y"
