"""The hot-slot calendar kernel: ordering, peek contract, legacy parity.

PR 7 replaced the kernel's single binary heap with a current-tick slot
(two deques) plus an overflow heap.  These tests pin the contracts the
rest of the repo builds on:

* pop order is identical to the flat heap's ``(time, priority, seq)``
  order — proven here by running mixed schedules through both kernels;
* ``peek()`` returns ``inf`` on an empty queue (``run(until)`` and the
  drained-queue deadlock diagnostics rely on it);
* an :class:`Environment` stays *truthy* when its queue is empty —
  ``System`` uses ``env or Environment()``, so a falsy empty environment
  would be silently replaced (the bug the ``queued`` property exists to
  prevent).
"""

import math

import pytest

from repro.errors import SimulationDeadlock
from repro.sim import Environment
from repro.sim.events import Event, NORMAL, URGENT


def legacy_environment():
    # Same switch REPRO_LEGACY_QUEUE=1 flips, without mutating process
    # environment state for other tests: the flag is only consulted at
    # schedule/step time, so setting it on a fresh instance is enough.
    env = Environment()
    env._legacy = True
    return env


class TestPeekContract:
    def test_peek_infinite_on_fresh_environment(self):
        assert Environment().peek() == math.inf

    def test_peek_infinite_after_queue_drains(self):
        env = Environment()

        def proc(env):
            yield env.timeout(3)

        env.process(proc(env))
        env.run()
        assert env.peek() == math.inf
        assert env.queued == 0

    def test_peek_sees_current_tick_slot(self):
        env = Environment()
        env.schedule(Event(env), priority=NORMAL)
        assert env.peek() == env.now

    def test_peek_sees_overflow_heap(self):
        env = Environment()
        env.timeout(5)
        assert env.peek() == 5.0

    def test_drained_queue_raises_deadlock_with_diagnostics(self):
        env = Environment()
        env.add_deadlock_diagnostic(lambda: "diagnostic: nothing runnable")

        def stuck(env):
            yield Event(env)  # never triggered

        proc = env.process(stuck(env))
        with pytest.raises(SimulationDeadlock) as excinfo:
            env.run(until=proc)
        assert "diagnostic: nothing runnable" in str(excinfo.value)

    def test_empty_environment_is_truthy(self):
        # System.__init__ does ``env or Environment()``: a falsy empty
        # environment would be silently swapped for a fresh one.
        assert bool(Environment())
        assert not hasattr(Environment, "__len__")


def _record_order(env):
    order = []

    def tag(label):
        event = Event(env)
        event._ok = True  # scheduled directly, the way kernel events are
        event.callbacks.append(lambda _evt, lab=label: order.append(lab))
        return event

    return order, tag


class TestOrderingParity:
    def _drive(self, env):
        """One mixed schedule: same-tick urgent/normal plus future times."""
        order, tag = _record_order(env)
        env.schedule(tag("n1"), priority=NORMAL)
        env.schedule(tag("u1"), priority=URGENT)
        env.schedule(tag("future1"), priority=NORMAL, delay=2.0)
        env.schedule(tag("n2"), priority=NORMAL)
        env.schedule(tag("future0"), priority=NORMAL, delay=1.0)
        env.schedule(tag("u2"), priority=URGENT)

        def at_one(env):
            yield env.timeout(1.0)
            env.schedule(tag("n3"), priority=NORMAL)
            env.schedule(tag("u3"), priority=URGENT)

        env.process(at_one(env))
        env.run()
        return order

    def test_calendar_matches_legacy_heap_order(self):
        assert self._drive(Environment()) == self._drive(legacy_environment())

    def test_urgent_runs_before_normal_at_same_tick(self):
        order = self._drive(Environment())
        assert order.index("u1") < order.index("n1")
        assert order.index("u3") < order.index("n3")

    def test_heap_event_at_current_tick_precedes_slot_normals(self):
        # ``future0`` was scheduled before the process resumed at t=1, so
        # its heap seq is smaller than the slot entries created at t=1:
        # it must run before them.
        order = self._drive(Environment())
        assert order.index("future0") < order.index("n3")

    def test_schedule_count_monotonic(self):
        env = Environment()
        before = env.schedule_count
        env.schedule(Event(env), priority=NORMAL)
        env.timeout(4)
        assert env.schedule_count == before + 2

    def test_queued_events_spans_slot_and_heap(self):
        env = Environment()
        env.schedule(Event(env), priority=NORMAL)
        env.schedule(Event(env), priority=URGENT)
        env.timeout(9)
        assert env.queued == 3
        assert len(list(env.queued_events())) == 3
