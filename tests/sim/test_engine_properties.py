"""Property-based tests: event-ordering guarantees of the kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment


@settings(max_examples=200, deadline=None)
@given(st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=30,
))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=2,
                max_size=20))
def test_equal_time_events_fire_in_creation_order(delays):
    """FIFO among simultaneous events: processes created earlier run
    earlier at the same timestamp."""
    env = Environment()
    order = []

    def proc(env, index, delay):
        yield env.timeout(delay)
        order.append((env.now, index))

    for index, delay in enumerate(delays):
        env.process(proc(env, index, delay))
    env.run()
    # Within each timestamp, indices are increasing.
    by_time: dict[float, list[int]] = {}
    for when, index in order:
        by_time.setdefault(when, []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
                min_size=1, max_size=15))
def test_run_until_never_overshoots(delays):
    env = Environment()
    seen = []

    def proc(env, delay):
        yield env.timeout(delay)
        seen.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    horizon = max(delays) / 2
    env.run(until=horizon)
    assert env.now == horizon
    assert all(t <= horizon for t in seen)
    env.run()
    assert len(seen) == len(delays)
