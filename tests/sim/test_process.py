"""Unit tests for generator-backed processes."""

import pytest

from repro.errors import ProcessInterrupted
from repro.sim import Environment


def test_process_returns_generator_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 123

    assert env.run(env.process(proc(env))) == 123


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_is_alive_until_exit():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_name_defaults_to_generator_name():
    env = Environment()

    def my_worker(env):
        yield env.timeout(1)

    assert env.process(my_worker(env)).name == "my_worker"
    assert env.process(my_worker(env), name="custom").name == "custom"
    env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except ProcessInterrupted as exc:
            seen.append((env.now, exc.cause))

    def killer(env, target):
        yield env.timeout(3)
        target.interrupt("reason")

    target = env.process(sleeper(env))
    env.process(killer(env, target))
    env.run()
    assert seen == [(3.0, "reason")]


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper(env):
        deadline = env.timeout(10)
        try:
            yield deadline
        except ProcessInterrupted:
            pass
        # Re-yield the original event: it is still valid.
        yield deadline
        return env.now

    def killer(env, target):
        yield env.timeout(2)
        target.interrupt()

    target = env.process(sleeper(env))
    env.process(killer(env, target))
    assert env.run(target) == 10.0


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def proc(env):
        me = env.active_process
        with pytest.raises(RuntimeError):
            me.interrupt()
        yield env.timeout(1)

    env.run(env.process(proc(env)))


def test_yield_non_event_raises_in_process():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        yield 42  # not an event

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_processes_wait_on_processes_chain():
    env = Environment()

    def level2(env):
        yield env.timeout(2)
        return "deep"

    def level1(env):
        value = yield env.process(level2(env))
        yield env.timeout(1)
        return value + "-done"

    assert env.run(env.process(level1(env))) == "deep-done"
    assert env.now == 3.0


def test_uncaught_interrupt_fails_process_and_waiter_sees_it():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100)

    def killer(env, target):
        yield env.timeout(1)
        target.interrupt("kill")

    def parent(env):
        target = env.process(sleeper(env))
        env.process(killer(env, target))
        try:
            yield target
        except ProcessInterrupted as exc:
            return exc.cause

    assert env.run(env.process(parent(env))) == "kill"
