"""Unit tests for event primitives (Event, Timeout, AnyOf, AllOf)."""

import pytest

from repro.sim import Environment


def test_event_lifecycle_flags():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed
    ev.succeed(99)
    assert ev.triggered
    assert ev.value == 99
    assert ev.ok
    env.run()
    assert ev.processed


def test_event_value_unavailable_before_trigger():
    env = Environment()
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value
    with pytest.raises(AttributeError):
        _ = ev.ok


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(2, value="ding")
        return got

    assert env.run(env.process(proc(env))) == "ding"


def test_anyof_triggers_on_first():
    env = Environment()

    def proc(env):
        slow = env.timeout(10, value="slow")
        fast = env.timeout(1, value="fast")
        result = yield env.any_of([slow, fast])
        return (env.now, list(result.values()))

    now, values = env.run(env.process(proc(env)))
    assert now == 1.0
    assert values == ["fast"]


def test_allof_waits_for_all():
    env = Environment()

    def proc(env):
        a = env.timeout(3, value="a")
        b = env.timeout(7, value="b")
        result = yield env.all_of([a, b])
        return (env.now, sorted(result.values()))

    now, values = env.run(env.process(proc(env)))
    assert now == 7.0
    assert values == ["a", "b"]


def test_allof_empty_list_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    assert env.run(env.process(proc(env))) == {}


def test_anyof_includes_already_processed_event():
    env = Environment()

    def proc(env):
        done = env.timeout(0, value="early")
        yield env.timeout(5)
        result = yield env.any_of([done, env.timeout(100)])
        return (env.now, list(result.values()))

    now, values = env.run(env.process(proc(env)))
    assert now == 5.0
    assert values == ["early"]


def test_condition_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("sub failed")

    def proc(env):
        try:
            yield env.all_of([env.process(bad(env)), env.timeout(50)])
        except RuntimeError as exc:
            return str(exc)

    assert env.run(env.process(proc(env))) == "sub failed"


def test_events_must_share_environment():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        env1.all_of([env1.event(), env2.event()])
