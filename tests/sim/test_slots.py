"""Hot-path classes stay ``__dict__``-free.

PR 7's allocation diet relies on ``__slots__`` across the kernel's event
classes, messages, operations, lock records, and log records.  A single
stray attribute assignment (or a subclass that forgets its own
``__slots__``) silently re-grows a per-instance ``__dict__`` and undoes
the win — the construction booby-traps below fail the moment that
happens, the same guard style PR 3 used for zero-cost observability.
"""

import pytest

from repro.locking.manager import HoldRecord, LockRequest
from repro.locking.modes import LockMode
from repro.net.message import Message, MsgType
from repro.sg.conflicts import OpKind, Operation
from repro.sim import Environment
from repro.sim.events import AllOf, AnyOf, Condition, Event, Initialize, Timeout
from repro.sim.process import Process
from repro.storage.wal import LogRecord, RecordType
from repro.txn.operations import ReadOp, SemanticOp, WriteOp


def _instances():
    """One live instance of every slotted hot-path class."""
    env = Environment()
    event = Event(env)
    timeout = Timeout(env, 1.0)

    def proc(env):
        yield env.timeout(1)

    process = env.process(proc(env))
    return [
        event,
        timeout,
        Initialize(env, process),
        Condition(env, [event]),
        AllOf(env, [event]),
        AnyOf(env, [event]),
        process,
        Message(
            msg_type=MsgType.VOTE, sender="S1", recipient="coord.T1",
            txn_id="T1",
        ),
        ReadOp("k0"),
        WriteOp("k0", 7),
        SemanticOp("deposit", "k0", {"amount": 5}),
        Operation(txn_id="T1", kind=OpKind.READ, key="k0", site="S1", seq=0),
        LockRequest(
            txn_id="T1", key="k0", mode=LockMode.S, event=event,
            requested_at=0.0,
        ),
        HoldRecord(
            txn_id="T1", key="k0", mode=LockMode.S, granted_at=0.0,
            released_at=1.0,
        ),
        LogRecord(lsn=1, record_type=RecordType.BEGIN, txn_id="T1"),
    ]


def test_no_instance_dict():
    for instance in _instances():
        assert not hasattr(instance, "__dict__"), (
            f"{type(instance).__name__} grew a __dict__ — a stray "
            "attribute or a slotless subclass re-enabled per-instance dicts"
        )


def test_stray_attribute_assignment_raises():
    # Slotted classes raise AttributeError; frozen+slots dataclasses on
    # some CPython patchlevels raise TypeError from the generated
    # __setattr__ instead.  Either way the assignment must not succeed.
    for instance in _instances():
        with pytest.raises((AttributeError, TypeError)):
            instance.stray_attribute_for_slots_test = 1
