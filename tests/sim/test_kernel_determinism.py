"""The calendar kernel is observationally identical to the flat heap.

PR 7's hot-slot event queue must not change a single scheduling decision:
``(time, priority, seq)`` order is an API other layers (trace replay, the
model checker's corpus, seeded experiments) depend on.  The legacy all-heap
kernel stays available behind ``REPRO_LEGACY_QUEUE=1`` *for this comparison
only*; these tests run both kernels on pinned seeds and demand identical
output.

The ``repro trace`` comparison is byte-exact over the JSONL stream.  The
checker comparison pins the schedule census (explored count and verdict
fields) rather than raw stdout, because the report prints wall-clock
elapsed time — the one legitimately kernel-dependent byte.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _run_cli(args, legacy):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    if legacy:
        env["REPRO_LEGACY_QUEUE"] = "1"
    else:
        env.pop("REPRO_LEGACY_QUEUE", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=120,
    )


class TestTraceByteDeterminism:
    def test_trace_identical_across_kernels(self):
        for seed in (3, 11):
            fast = _run_cli(["trace", "--seed", str(seed)], legacy=False)
            slow = _run_cli(["trace", "--seed", str(seed)], legacy=True)
            assert fast.returncode == slow.returncode == 0, (
                fast.stderr + slow.stderr
            )
            assert fast.stdout == slow.stdout, (
                f"seed {seed}: kernel swap changed the trace stream"
            )

    @pytest.mark.parametrize("scheme", ["TWO_PL", "O2PC", "PAXOS", "SHORT"])
    def test_every_scheme_traces_identically_across_kernels(self, scheme):
        # The competitor engines ride the same kernel contract as O2PC:
        # per seed and scheme the JSONL stream is byte-identical across
        # kernels *and* across repeated runs (the parity the compare
        # harness and the checker corpus both lean on).
        args = ["trace", "--seed", "7", "--scheme", scheme]
        fast = _run_cli(args, legacy=False)
        slow = _run_cli(args, legacy=True)
        again = _run_cli(args, legacy=False)
        assert fast.returncode == slow.returncode == 0, (
            fast.stderr + slow.stderr
        )
        assert fast.stdout, f"{scheme}: empty trace stream"
        assert fast.stdout == slow.stdout, (
            f"{scheme}: kernel swap changed the trace stream"
        )
        assert fast.stdout == again.stdout, (
            f"{scheme}: repeated run changed the trace stream"
        )


class TestCheckerDeterminism:
    def _census(self, legacy):
        from repro.check.explorer import CheckConfig, ModelChecker

        if legacy:
            os.environ["REPRO_LEGACY_QUEUE"] = "1"
        try:
            report = ModelChecker(CheckConfig(
                scenario="conflict", protocol="P1", seed=0,
                depth=10, crashes=1, max_schedules=120,
            )).run()
        finally:
            os.environ.pop("REPRO_LEGACY_QUEUE", None)
        return (
            report.explored,
            report.exhausted,
            report.first_run_choice_points,
            sorted(str(c) for c in report.counterexamples),
        )

    def test_checker_census_identical_across_kernels(self):
        assert self._census(legacy=False) == self._census(legacy=True)
