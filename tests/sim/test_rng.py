"""Unit tests for the seeded RNG helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import Rng


def test_same_seed_same_sequence():
    a, b = Rng(7), Rng(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    assert [Rng(1).random() for _ in range(5)] != [
        Rng(2).random() for _ in range(5)
    ]


def test_fork_is_deterministic_and_independent():
    parent1, parent2 = Rng(3), Rng(3)
    parent1.random()  # consume the parent stream
    f1 = parent1.fork("net")
    f2 = parent2.fork("net")
    assert [f1.random() for _ in range(5)] == [f2.random() for _ in range(5)]
    assert parent1.fork("net").seed != parent1.fork("workload").seed


def test_chance_extremes():
    rng = Rng(0)
    assert all(rng.chance(1.0) for _ in range(20))
    assert not any(rng.chance(0.0) for _ in range(20))
    with pytest.raises(ValueError):
        rng.chance(1.5)


def test_exponential_positive_and_mean():
    rng = Rng(11)
    draws = [rng.exponential(10.0) for _ in range(5000)]
    assert all(d >= 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 9.0 < mean < 11.0
    with pytest.raises(ValueError):
        rng.exponential(0)


def test_normal_truncation():
    rng = Rng(5)
    draws = [rng.normal(0.0, 5.0, minimum=0.0) for _ in range(200)]
    assert all(d >= 0.0 for d in draws)


@given(st.integers(min_value=1, max_value=500))
def test_zipf_index_in_range(n):
    rng = Rng(42)
    for _ in range(20):
        assert 0 <= rng.zipf_index(n, theta=0.99) < n


def test_zipf_skews_toward_low_indices():
    rng = Rng(9)
    n = 100
    draws = [rng.zipf_index(n, theta=1.2) for _ in range(5000)]
    low = sum(1 for d in draws if d < 10)
    high = sum(1 for d in draws if d >= 90)
    assert low > high * 3


def test_zipf_theta_zero_is_uniformish():
    rng = Rng(13)
    n = 10
    draws = [rng.zipf_index(n, theta=0.0) for _ in range(10000)]
    counts = [draws.count(i) for i in range(n)]
    expected = len(draws) / n
    assert all(abs(c - expected) < expected * 0.3 for c in counts)


def test_zipf_invalid_n():
    with pytest.raises(ValueError):
        Rng(0).zipf_index(0)


def test_sample_and_choice_deterministic():
    rng1, rng2 = Rng(4), Rng(4)
    items = list(range(50))
    assert rng1.sample(items, 5) == rng2.sample(items, 5)
    assert rng1.choice(items) == rng2.choice(items)


def test_uniform_bounds():
    rng = Rng(1)
    for _ in range(100):
        x = rng.uniform(2.0, 3.0)
        assert 2.0 <= x <= 3.0


def test_randint_bounds():
    rng = Rng(1)
    draws = {rng.randint(1, 3) for _ in range(200)}
    assert draws == {1, 2, 3}
