"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationDeadlock
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        return env.now

    p = env.process(proc(env))
    assert env.run(p) == 5.0
    assert env.now == 5.0


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(10)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=3.0)
    assert env.now == 3.0
    assert fired == []
    env.run(until=20.0)
    assert fired == [10.0]
    assert env.now == 20.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "result"

    assert env.run(env.process(proc(env))) == "result"


def test_run_drains_queue_when_until_none():
    env = Environment()

    def proc(env):
        yield env.timeout(7)

    env.process(proc(env))
    env.run()
    assert env.now == 7.0


def test_step_on_empty_queue_raises_deadlock():
    env = Environment()
    with pytest.raises(SimulationDeadlock):
        env.step()


def test_run_until_untriggerable_event_raises_deadlock():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationDeadlock):
        env.run(orphan)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4.0


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_unhandled_process_failure_surfaces():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_failure_propagates_to_waiting_process():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("inner")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(env.process(parent(env))) == "caught inner"


def test_determinism_same_structure_same_order():
    def build():
        env = Environment()
        order = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            order.append((tag, env.now))

        for tag, delay in (("x", 3), ("y", 1), ("z", 3)):
            env.process(proc(env, tag, delay))
        env.run()
        return order

    assert build() == build() == [("y", 1.0), ("x", 3.0), ("z", 3.0)]
