"""Explorer: DFS enumeration, bounded mode, replay determinism."""

from repro.check.explorer import CheckConfig, ModelChecker, replay
from repro.check.scheduler import ChoicePolicy


class TestSingleRun:
    def test_default_schedule_under_p1_is_clean(self):
        checker = ModelChecker(CheckConfig(scenario="conflict", protocol="P1"))
        outcome = checker.execute(ChoicePolicy())
        assert outcome.ok
        assert outcome.vector == tuple(c.chosen for c in outcome.log)
        # Both transactions terminated: T1 aborted+compensated, T2 committed.
        results = {o.txn_id: o.committed for o in outcome.system.outcomes}
        assert results == {"T1": False, "T2": True}

    def test_default_schedule_under_none_shows_exposure_race(self):
        """Without the marking rules the conflict scenario's very first
        schedule forms the Section 4 regular cycle."""
        checker = ModelChecker(
            CheckConfig(scenario="conflict", protocol="none")
        )
        outcome = checker.execute(ChoicePolicy())
        oracles = {v.oracle for v in outcome.violations}
        assert "serializability" in oracles
        assert any("CT1" in v.detail for v in outcome.violations)


class TestDfs:
    def test_enumerates_distinct_schedules(self):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", depth=6, max_schedules=50,
        )).run()
        assert report.explored > 1
        assert report.first_run_choice_points > 0

    def test_p1_exhaustive_no_crash_space_is_clean(self):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", depth=999,
            max_schedules=2000,
        )).run()
        assert report.exhausted
        assert report.explored >= 10
        assert report.ok

    def test_none_protocol_counterexamples_carry_replay_vectors(self):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="none", depth=4, max_schedules=8,
        )).run()
        assert not report.ok
        counterexample = report.counterexamples[0]
        outcome = replay(
            CheckConfig(scenario="conflict", protocol="none"),
            counterexample.choices,
        )
        assert outcome.violations == counterexample.violations

    def test_budget_cap_reported_as_not_exhausted(self):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", depth=10, crashes=1,
            max_schedules=5,
        )).run()
        assert report.explored == 5
        assert not report.exhausted


class TestBoundedMode:
    def test_bounded_walks_dedupe_by_vector(self):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", crashes=1,
            bounded=30, max_schedules=30,
        )).run()
        assert 0 < report.explored <= 30
        assert report.ok

    def test_bounded_mode_is_seed_deterministic(self):
        config = CheckConfig(
            scenario="conflict", protocol="P1", crashes=1,
            bounded=10, max_schedules=10, seed=3,
        )
        first = ModelChecker(config).run()
        second = ModelChecker(config).run()
        assert first.explored == second.explored


class TestReplayDeterminism:
    def test_replay_is_byte_identical(self):
        config = CheckConfig(scenario="conflict", protocol="P1", crashes=1)
        base = ModelChecker(config).execute(ChoicePolicy())
        # Branch into a crash somewhere to make the schedule non-trivial.
        crash_index = next(
            i for i, c in enumerate(base.log) if c.kind == "crash"
        )
        vector = tuple(
            c.chosen for c in base.log[:crash_index]
        ) + (1,)
        first = replay(config, vector)
        second = replay(config, vector)
        assert first.system.obs.jsonl() == second.system.obs.jsonl()
        assert first.vector == second.vector
        assert first.violations == second.violations

    def test_duel_scenario_default_schedule_clean_under_p1(self):
        outcome = ModelChecker(
            CheckConfig(scenario="duel", protocol="P1")
        ).execute(ChoicePolicy())
        assert outcome.ok
        results = {o.txn_id: o.committed for o in outcome.system.outcomes}
        assert results == {"T1": False, "T2": False}
