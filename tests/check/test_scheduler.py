"""Controlled scheduler: choice points, pruning, replay, budgets."""

import pytest

from repro.check.scheduler import ChoicePolicy, ControlledEnvironment, RandomPolicy
from repro.errors import ScheduleDivergence, StepBudgetExceeded
from repro.sim.rng import Rng


def _annotated_timeout(env, delay, recipient, label, sink):
    timeout = env.timeout(delay)
    timeout.annotation = ("net.deliver", recipient, label)
    timeout.callbacks.append(lambda _evt: sink.append(label))
    return timeout


class TestChoicePoints:
    def test_same_recipient_simultaneous_deliveries_branch(self):
        policy = ChoicePolicy()
        env = ControlledEnvironment(policy)
        order = []
        _annotated_timeout(env, 1.0, "S1", "a->S1", order)
        _annotated_timeout(env, 1.0, "S1", "b->S1", order)
        env.run()
        assert order == ["a->S1", "b->S1"]
        assert len(policy.log) == 1
        choice = policy.log[0]
        assert choice.kind == "deliver"
        assert choice.labels == ("a->S1", "b->S1")
        assert choice.branch == (0, 1)

    def test_prefix_flips_delivery_order(self):
        policy = ChoicePolicy(prefix=(1,))
        env = ControlledEnvironment(policy)
        order = []
        _annotated_timeout(env, 1.0, "S1", "a->S1", order)
        _annotated_timeout(env, 1.0, "S1", "b->S1", order)
        env.run()
        assert order == ["b->S1", "a->S1"]

    def test_cross_site_deliveries_pruned(self):
        """Deliveries to different recipients commute: no choice point."""
        policy = ChoicePolicy()
        env = ControlledEnvironment(policy, prune=True)
        order = []
        _annotated_timeout(env, 1.0, "S1", "a->S1", order)
        _annotated_timeout(env, 1.0, "S2", "b->S2", order)
        env.run()
        assert order == ["a->S1", "b->S2"]
        assert policy.log == []

    def test_no_prune_explores_cross_site_orders(self):
        policy = ChoicePolicy(prefix=(1,))
        env = ControlledEnvironment(policy, prune=False)
        order = []
        _annotated_timeout(env, 1.0, "S1", "a->S1", order)
        _annotated_timeout(env, 1.0, "S2", "b->S2", order)
        env.run()
        assert order == ["b->S2", "a->S1"]

    def test_internal_events_run_before_deliveries(self):
        policy = ChoicePolicy()
        env = ControlledEnvironment(policy)
        order = []
        _annotated_timeout(env, 1.0, "S1", "a->S1", order)
        _annotated_timeout(env, 1.0, "S1", "b->S1", order)
        plain = env.timeout(1.0)
        plain.callbacks.append(lambda _evt: order.append("internal"))
        env.run()
        assert order[0] == "internal"
        # The delivery pair still forms one choice point afterwards.
        assert len(policy.log) == 1

    def test_deliveries_at_different_times_never_branch(self):
        policy = ChoicePolicy()
        env = ControlledEnvironment(policy)
        order = []
        _annotated_timeout(env, 1.0, "S1", "a->S1", order)
        _annotated_timeout(env, 2.0, "S1", "b->S1", order)
        env.run()
        assert order == ["a->S1", "b->S1"]
        assert policy.log == []


class TestPolicies:
    def test_divergent_prefix_raises(self):
        policy = ChoicePolicy(prefix=(7,))
        with pytest.raises(ScheduleDivergence):
            policy.choose("deliver", ["a", "b"], [0, 1])

    def test_vector_records_choices(self):
        policy = ChoicePolicy(prefix=(1,))
        policy.choose("deliver", ["a", "b"], [0, 1])
        policy.choose("deliver", ["c", "d"], [0, 1])
        assert policy.vector == (1, 0)

    def test_random_policy_is_seed_deterministic(self):
        picks1 = [
            RandomPolicy(Rng(5)).choose("deliver", ["a", "b", "c"], [0, 1, 2])
            for _ in range(20)
        ]
        picks2 = [
            RandomPolicy(Rng(5)).choose("deliver", ["a", "b", "c"], [0, 1, 2])
            for _ in range(20)
        ]
        assert picks1 == picks2

    def test_random_policy_crash_bias(self):
        """crash_probability=0 always continues; =1 always crashes."""
        never = RandomPolicy(Rng(1), crash_probability=0.0)
        always = RandomPolicy(Rng(1), crash_probability=1.0)
        for _ in range(10):
            assert never.choose("crash", ["go", "c1", "c2"], [0, 1, 2]) == 0
            assert always.choose("crash", ["go", "c1", "c2"], [0, 1, 2]) != 0


class TestBudget:
    def test_step_budget_exceeded(self):
        policy = ChoicePolicy()
        env = ControlledEnvironment(policy, max_steps=3)

        def ticker():
            while True:
                yield env.timeout(1.0)

        env.process(ticker())
        with pytest.raises(StepBudgetExceeded):
            env.run()
