"""Seeded regression corpus: known counterexamples must stay reproducible.

Each entry pins a (scenario, protocol, seed, choice vector) whose replay is
known to violate specific oracles.  If an entry stops reproducing, either
the protocol implementation changed behavior (investigate!) or the choice-
point structure shifted (re-harvest the corpus deliberately — the vectors
are positional).
"""

import json
from pathlib import Path

import pytest

from repro.check.explorer import CheckConfig, replay

CORPUS = json.loads(
    (Path(__file__).parent / "corpus.json").read_text(encoding="utf-8")
)


@pytest.mark.parametrize(
    "entry", CORPUS, ids=[entry["name"] for entry in CORPUS]
)
def test_corpus_entry_reproduces(entry):
    outcome = replay(
        CheckConfig(
            scenario=entry["scenario"],
            protocol=entry["protocol"],
            seed=entry["seed"],
        ),
        entry["choices"],
    )
    assert {v.oracle for v in outcome.violations} == set(entry["oracles"]), [
        str(v) for v in outcome.violations
    ]


@pytest.mark.parametrize(
    "entry", CORPUS[:2], ids=[entry["name"] for entry in CORPUS[:2]]
)
def test_corpus_replay_is_byte_stable(entry):
    config = CheckConfig(
        scenario=entry["scenario"],
        protocol=entry["protocol"],
        seed=entry["seed"],
    )
    first = replay(config, entry["choices"])
    second = replay(config, entry["choices"])
    assert first.system.obs.jsonl() == second.system.obs.jsonl()
