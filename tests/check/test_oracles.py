"""Oracle layer: verdicts on healthy and broken runs; no history mutation."""

from repro.check.explorer import CheckConfig, ModelChecker
from repro.check.oracles import run_oracles
from repro.check.scheduler import ChoicePolicy


def _finished_run(protocol):
    return ModelChecker(
        CheckConfig(scenario="conflict", protocol=protocol)
    ).execute(ChoicePolicy())


class TestVerdicts:
    def test_healthy_run_has_no_violations(self):
        outcome = _finished_run("P1")
        assert run_oracles(outcome.system) == []

    def test_exposure_race_trips_serializability_and_atomicity(self):
        outcome = _finished_run("none")
        oracles = {v.oracle for v in run_oracles(outcome.system)}
        assert "serializability" in oracles
        assert "atomicity" in oracles

    def test_strict_mode_is_at_least_as_harsh(self):
        outcome = _finished_run("none")
        effective = run_oracles(outcome.system, strict=False)
        strict = run_oracles(outcome.system, strict=True)
        assert len(strict) >= len(effective)


class TestRecoveryOracleIsPure:
    def test_oracle_does_not_mutate_site_logs(self):
        """restart() appends ABORT records for losers; the oracle must run
        on a clone and leave the judged history untouched."""
        outcome = _finished_run("P1")
        before = {
            sid: len(site.wal)
            for sid, site in outcome.system.sites.items()
        }
        run_oracles(outcome.system)
        run_oracles(outcome.system)
        after = {
            sid: len(site.wal)
            for sid, site in outcome.system.sites.items()
        }
        assert before == after

    def test_oracle_verdicts_are_idempotent(self):
        outcome = _finished_run("none")
        first = run_oracles(outcome.system)
        second = run_oracles(outcome.system)
        assert first == second
