"""A scaled-down version of the CI smoke: DFS with crashes stays clean.

The full quota (>= 1000 schedules) runs in CI via ``repro check --smoke``;
here a few hundred schedules keep the tier-1 suite fast while still
covering the crash enumerator x scheduler x oracle integration.
"""

from repro.check.explorer import CheckConfig, ModelChecker
from repro.cli import main


class TestSmoke:
    def test_small_smoke_is_clean(self):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1",
            depth=14, crashes=2, max_schedules=250,
        )).run()
        assert report.explored == 250
        assert report.ok, [
            str(v) for ce in report.counterexamples for v in ce.violations
        ]

    def test_cli_check_exit_codes(self, capsys):
        assert main([
            "check", "--protocol", "P1", "--depth", "4",
            "--max-schedules", "5",
        ]) == 0
        assert "no oracle violations" in capsys.readouterr().out
        assert main([
            "check", "--protocol", "none", "--depth", "4",
            "--max-schedules", "5",
        ]) == 1
        out = capsys.readouterr().out
        assert "counterexample" in out
        assert "replay vector:" in out

    def test_cli_replay_emits_jsonl(self, capsys):
        code = main([
            "check", "--protocol", "none", "--replay", "0,0,1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        first = captured.out.splitlines()[0]
        assert first.startswith("{")
        assert "serializability" in captured.err
