"""Crash enumerator: significant points, budgets, protocol resilience."""

import json

from repro.check.crashes import SIGNIFICANT_KINDS
from repro.check.explorer import CheckConfig, ModelChecker
from repro.check.scheduler import ChoicePolicy


def _crash_vector(config, label_fragment):
    """The choice vector that takes the first crash candidate whose label
    contains ``label_fragment`` (e.g. ``"S1@comp.start"``)."""
    base = ModelChecker(config).execute(ChoicePolicy())
    for index, choice in enumerate(base.log):
        if choice.kind != "crash":
            continue
        for candidate, label in enumerate(choice.labels):
            if candidate != 0 and label_fragment in label:
                return tuple(c.chosen for c in base.log[:index]) + (candidate,)
    raise AssertionError(
        f"no crash candidate matching {label_fragment!r} in "
        f"{[c.labels for c in base.log if c.kind == 'crash']}"
    )


def _events(outcome, kind):
    return [
        json.loads(line)
        for line in outcome.system.obs.jsonl().splitlines()
        if json.loads(line).get("kind") == kind
    ]


class TestCrashChoicePoints:
    def test_budget_zero_opens_no_crash_points(self):
        outcome = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", crashes=0,
        )).execute(ChoicePolicy())
        assert all(c.kind != "crash" for c in outcome.log)

    def test_significant_events_open_crash_points(self):
        outcome = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", crashes=1,
        )).execute(ChoicePolicy())
        crash_points = [c for c in outcome.log if c.kind == "crash"]
        assert crash_points
        for choice in crash_points:
            assert choice.labels[0].startswith("continue@")
            point = choice.labels[0].split("@", 1)[1]
            assert point.split(":", 1)[0] in SIGNIFICANT_KINDS

    def test_candidates_cover_sites_and_coordinators(self):
        outcome = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", crashes=1,
        )).execute(ChoicePolicy())
        first = next(c for c in outcome.log if c.kind == "crash")
        targets = {
            label.split(":", 1)[1].split("@", 1)[0]
            for label in first.labels[1:]
        }
        assert {"S1", "S2", "coord.T1", "coord.T2"} <= targets


class TestInjectedCrashes:
    def test_crash_in_exposure_window_is_survived_by_p1(self):
        """Crash S1 right after it locally commits T1 — the paper's
        motivating exposure-window failure — and let it recover."""
        config = CheckConfig(scenario="conflict", protocol="P1", crashes=1)
        vector = _crash_vector(config, "S1@subtxn.local_commit:T1")
        outcome = ModelChecker(config).execute(ChoicePolicy(vector))
        crashes = _events(outcome, "site.crash")
        recoveries = _events(outcome, "site.recover")
        assert [e["site_id"] for e in crashes] == ["S1"]
        assert [e["site_id"] for e in recoveries] == ["S1"]
        assert outcome.ok, [str(v) for v in outcome.violations]

    def test_coordinator_crash_is_survived(self):
        config = CheckConfig(scenario="conflict", protocol="P1", crashes=1)
        vector = _crash_vector(config, "coord.T1@")
        outcome = ModelChecker(config).execute(ChoicePolicy(vector))
        assert outcome.ok, [str(v) for v in outcome.violations]
        assert {o.txn_id for o in outcome.system.outcomes} == {"T1", "T2"}

    def test_budget_limits_injected_crashes(self):
        config = CheckConfig(scenario="conflict", protocol="P1", crashes=1)
        vector = _crash_vector(config, "crash:")
        outcome = ModelChecker(config).execute(ChoicePolicy(vector))
        # After the single crash the budget is spent: no further crash
        # choice points may appear in the log.
        crash_choices = [c for c in outcome.log if c.kind == "crash"]
        taken = [c for c in crash_choices if c.chosen != 0]
        assert len(taken) == 1
        assert crash_choices[-1] is taken[0]
        assert len(_events(outcome, "site.crash")) == 1
