"""Mutation testing: a deliberately broken marking rule must be caught.

This is the checker checking itself: if neutering P1's R1 check and
vote-time validation does *not* produce a counterexample, the oracles (or
the scenarios) have lost their teeth.
"""

from repro.check.explorer import CheckConfig, ModelChecker, replay
from repro.check.trace import render_counterexample
from repro.core.protocols import CheckResult, P1Protocol


class _BrokenP1(P1Protocol):
    """P1 with rule R1 and the vote-time revalidation disabled.

    ``merge_marks`` (and the marking transitions) stay intact, so the
    mutation models a protocol that *tracks* marks but never *acts* on
    them — exactly the kind of bug the checker exists to catch.
    """

    def check_spawn(self, txn_id, site_id, transmarks):
        return CheckResult(ok=True)

    def validate_at_vote(self, txn_id, site_id, transmarks):
        return True


def _config(**overrides):
    defaults = dict(
        scenario="conflict", protocol=_BrokenP1, depth=6, max_schedules=20,
    )
    defaults.update(overrides)
    return CheckConfig(**defaults)


class TestMutationIsCaught:
    def test_broken_p1_produces_counterexamples(self):
        report = ModelChecker(_config()).run()
        assert not report.ok
        oracles = {
            v.oracle
            for ce in report.counterexamples
            for v in ce.violations
        }
        assert "serializability" in oracles

    def test_intact_p1_is_clean_on_the_same_search(self):
        report = ModelChecker(_config(protocol="P1")).run()
        assert report.ok

    def test_counterexample_replays_byte_for_byte(self):
        report = ModelChecker(_config()).run()
        counterexample = report.counterexamples[0]
        outcome = replay(_config(), counterexample.choices)
        assert outcome.violations == counterexample.violations
        assert outcome.system.obs.jsonl() == counterexample.jsonl

    def test_counterexample_renders_a_trace(self):
        report = ModelChecker(_config()).run()
        text = render_counterexample(report.counterexamples[0])
        assert "replay vector:" in text
        assert "regular cycle" in text
        assert "comp.start" in text  # the compensation is on the trace
