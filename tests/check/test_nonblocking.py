"""The nonblocking oracle and the crashcoord scenario.

crashcoord is the blocking drill: coordinator down after the votes, one
acceptor down throughout.  Every scheme must pass it — the 2PC family by
legitimately waiting out the outage (the oracle is PAXOS-only), Paxos
Commit by terminating during it.  Killing a second acceptor removes the
termination quorum, and the oracle must catch the resulting block.
"""

import pytest

from repro.check.oracles import run_oracles
from repro.check.workloads import get_scenario, make_system_config
from repro.commit.base import CommitScheme
from repro.harness.system import System
from repro.net.failures import CrashPlan


def run_crashcoord(scheme, extra_plans=()):
    scenario = get_scenario("crashcoord")
    system = System(make_system_config(scenario, "none", 0, scheme=scheme))
    for plan in extra_plans:
        system.failures.schedule(plan)
    scenario.build(system)
    system.env.run()
    return system


class TestCrashcoordScenario:
    @pytest.mark.parametrize("scheme", list(CommitScheme))
    def test_every_scheme_survives_the_drill(self, scheme):
        system = run_crashcoord(scheme)
        assert run_oracles(system) == []
        outcome = system.outcomes[0]
        assert outcome.txn_id == "T1" and outcome.committed

    def test_paxos_decides_inside_the_outage(self):
        system = run_crashcoord(CommitScheme.PAXOS)
        state = system.participants["S1"].subtxns["T1"]
        assert state.decided_at is not None
        assert state.decided_at < 6.2 + 400.0

    def test_two_pl_waits_for_the_coordinator(self):
        system = run_crashcoord(CommitScheme.TWO_PL)
        state = system.participants["S1"].subtxns["T1"]
        assert state.decided_at is not None
        assert state.decided_at > 6.2 + 400.0


class TestNonblockingOracle:
    def test_quorum_loss_under_paxos_is_flagged(self):
        system = run_crashcoord(
            CommitScheme.PAXOS,
            extra_plans=(CrashPlan("acc.2", at=0.5, duration=400.0),),
        )
        violations = run_oracles(system)
        assert violations, "oracle missed a blocked Paxos Commit"
        assert {v.oracle for v in violations} == {"nonblocking"}
        # Both YES voters sat on the vote past the termination budget.
        flagged = {v.detail.split()[0] for v in violations}
        assert flagged == {"S1", "S2"}

    def test_quorum_loss_under_two_pl_is_vacuous(self):
        # The same double-acceptor crash under a 2PC-family scheme is
        # harmless noise: the oracle only judges PAXOS runs.
        system = run_crashcoord(
            CommitScheme.O2PC,
            extra_plans=(CrashPlan("acc.2", at=0.5, duration=400.0),),
        )
        assert run_oracles(system) == []


class TestReplayDeterminism:
    def test_crashcoord_event_stream_is_reproducible(self):
        streams = [
            run_crashcoord(CommitScheme.PAXOS).obs.jsonl()
            for _ in range(2)
        ]
        assert streams[0] == streams[1]
        assert streams[0]  # observability is on in the checker config
