"""Parallel exploration is a pure wall-clock optimization.

The contract (see :mod:`repro.check.parallel`): ``--jobs N`` and prefix
reuse never change *what* the checker reports — explored counts,
counterexample vectors, violations, and choice logs are identical to the
serial, no-reuse search.  These tests pin that equivalence on real
configurations (clean and failing, DFS and bounded) plus the unit behavior
of the wave planner and the fork gate.
"""

import dataclasses

import pytest

from repro.check import parallel
from repro.check.explorer import CheckConfig, CheckReport, ModelChecker
from repro.check.parallel import ParallelRunner, plan_groups


def _fingerprint(report: CheckReport):
    """Everything in a report except wall-clock time."""
    return (
        report.explored,
        report.exhausted,
        report.first_run_choice_points,
        [
            (ce.choices, ce.violations, ce.log, ce.jsonl)
            for ce in report.counterexamples
        ],
    )


def _run(config: CheckConfig, **overrides) -> CheckReport:
    return ModelChecker(dataclasses.replace(config, **overrides)).run()


CLEAN = CheckConfig(
    scenario="conflict", protocol="P1", depth=10, crashes=1,
    max_schedules=80,
)
FAILING = CheckConfig(
    scenario="conflict", protocol="none", depth=8, max_schedules=40,
)


class TestJobsDeterminism:
    def test_jobs4_matches_jobs1_clean_dfs(self):
        serial = _run(CLEAN, jobs=1)
        sharded = _run(CLEAN, jobs=4)
        assert serial.ok
        assert _fingerprint(sharded) == _fingerprint(serial)

    def test_jobs4_matches_jobs1_with_counterexamples(self):
        serial = _run(FAILING, jobs=1)
        sharded = _run(FAILING, jobs=4)
        assert not serial.ok  # unprotected protocol must fail
        assert _fingerprint(sharded) == _fingerprint(serial)

    def test_jobs4_matches_jobs1_bounded(self):
        config = dataclasses.replace(CLEAN, bounded=40, seed=7)
        serial = _run(config, jobs=1)
        sharded = _run(config, jobs=4)
        assert _fingerprint(sharded) == _fingerprint(serial)

    def test_unpicklable_config_fails_loudly(self):
        with pytest.raises(ValueError, match="picklable CheckConfig"):
            ParallelRunner(lambda: None, jobs=2)


class TestPrefixReuse:
    def test_forked_siblings_match_rerun_siblings(self, monkeypatch):
        """Force the fork path (the gate normally skips these cheap runs)
        and demand records identical to from-scratch re-execution."""
        if not parallel._FORK_AVAILABLE:
            pytest.skip("os.fork unavailable")
        monkeypatch.setattr(parallel, "FORK_MIN_RUN_SECONDS", 0.0)
        forked = _run(CLEAN, prefix_reuse=True)
        rerun = _run(CLEAN, prefix_reuse=False)
        assert _fingerprint(forked) == _fingerprint(rerun)

    def test_forked_counterexamples_survive_the_pipe(self, monkeypatch):
        if not parallel._FORK_AVAILABLE:
            pytest.skip("os.fork unavailable")
        monkeypatch.setattr(parallel, "FORK_MIN_RUN_SECONDS", 0.0)
        forked = _run(FAILING, prefix_reuse=True)
        rerun = _run(FAILING, prefix_reuse=False)
        assert not rerun.ok
        assert _fingerprint(forked) == _fingerprint(rerun)


class TestParanoid:
    def test_paranoid_smoke_is_clean(self):
        report = _run(CLEAN, max_schedules=30, paranoid=True)
        assert report.ok, [
            str(v) for ce in report.counterexamples for v in ce.violations
        ]


class TestPlanGroups:
    def test_consecutive_siblings_share_a_group(self):
        wave = [(0, 1), (0, 2), (0, 3)]
        assert plan_groups(wave) == [((0,), [1, 2, 3])]

    def test_stem_change_starts_a_new_group(self):
        wave = [(0, 1), (0, 2), (1, 0), (0, 3)]
        assert plan_groups(wave) == [
            ((0,), [1, 2]),
            ((1,), [0]),
            ((0,), [3]),
        ]

    def test_root_vector_stays_alone(self):
        assert plan_groups([(), (1,)]) == [((), []), ((), [1])]

    def test_flattened_order_is_wave_order(self):
        wave = [(2, 0), (2, 1), (0, 0, 5), (0, 0, 6), (3,)]
        flattened = []
        for stem, alts in plan_groups(wave):
            if not alts:
                flattened.append(stem)
            flattened.extend(stem + (alt,) for alt in alts)
        assert flattened == wave
