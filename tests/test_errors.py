"""Unit tests pinning the exception API (attributes callers rely on)."""

import pytest

from repro import errors


def test_hierarchy_rooted_at_repro_error():
    leaves = [
        errors.SimulationDeadlock, errors.ProcessInterrupted,
        errors.SiteDownError, errors.UnknownSiteError,
        errors.KeyNotFound, errors.WALError, errors.RecoveryError,
        errors.LockNotHeld, errors.DeadlockDetected, errors.LockTimeout,
        errors.TwoPhaseViolation, errors.TransactionAborted,
        errors.InvalidTransactionState, errors.SubtransactionRejected,
        errors.NotCompensatable, errors.UnknownAction,
        errors.PersistenceViolation,
        errors.ProtocolViolation, errors.HistoryError,
        errors.CorrectnessViolation, errors.AnalysisError,
    ]
    for leaf in leaves:
        assert issubclass(leaf, errors.ReproError)


def test_deadlock_detected_attributes():
    exc = errors.DeadlockDetected("T2", ["T1", "T2", "T1"])
    assert exc.victim == "T2"
    assert exc.cycle == ["T1", "T2", "T1"]
    assert "T1->T2->T1" in str(exc)


def test_transaction_aborted_attributes():
    exc = errors.TransactionAborted("T1", "vote NO")
    assert exc.txn_id == "T1"
    assert exc.reason == "vote NO"


def test_process_interrupted_cause():
    exc = errors.ProcessInterrupted(cause={"why": "test"})
    assert exc.cause == {"why": "test"}


def test_subtransaction_rejected_flags():
    retriable = errors.SubtransactionRejected("T1", "S2", retriable=True)
    assert retriable.retriable
    assert "retriable" in str(retriable)
    fatal = errors.SubtransactionRejected("T1", "S2", retriable=False)
    assert not fatal.retriable
    assert "fatal" in str(fatal)


def test_key_not_found_carries_key():
    assert errors.KeyNotFound("k9").key == "k9"


def test_not_compensatable_carries_op():
    assert errors.NotCompensatable("dispense").op_name == "dispense"


def test_unknown_action_is_a_not_compensatable():
    # Callers catching NotCompensatable (the real-action path) also catch
    # unknown names; callers who care can catch the narrower type.
    exc = errors.UnknownAction("teleport")
    assert isinstance(exc, errors.NotCompensatable)
    assert exc.op_name == "teleport"
    assert "teleport" in str(exc)
    assert "repertoire" in str(exc)


def test_unknown_action_distinct_from_real_action():
    real = errors.NotCompensatable("dispense")
    assert not isinstance(real, errors.UnknownAction)


def test_correctness_violation_cycle_defaults_empty():
    assert errors.CorrectnessViolation("msg").cycle == []
    assert errors.CorrectnessViolation("msg", ["A", "B"]).cycle == ["A", "B"]


def test_site_down_carries_site():
    assert errors.SiteDownError("S3").site_id == "S3"


def test_catch_all_pattern():
    with pytest.raises(errors.ReproError):
        raise errors.LockTimeout("too slow")
