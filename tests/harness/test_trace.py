"""Unit tests for the text timeline renderers."""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.obs.render import _bar
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def run_system(force_no=False, protocol="none"):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=protocol,
    ))
    spec = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 1})]),
        SubtxnSpec(
            "S2", [SemanticOp("deposit", "k0", {"amount": 1})],
            vote=VotePolicy.FORCE_NO if force_no else VotePolicy.AUTO,
        ),
    ])
    system.run_transaction(spec)
    system.env.run()
    return system


class TestBar:
    def test_full_span(self):
        assert _bar(0, 10, 0, 10, 10) == "##########"

    def test_partial_span(self):
        bar = _bar(5, 10, 0, 10, 10)
        assert bar == "     #####"

    def test_minimum_one_cell(self):
        bar = _bar(3.0, 3.0, 0, 10, 10)
        assert bar.count("#") == 1

    def test_clamped_to_axis(self):
        bar = _bar(-5, 50, 0, 10, 10)
        assert len(bar) == 10


class TestTransactionTimeline:
    def test_committed_line(self):
        text = run_system().timeline()
        assert "T1" in text
        assert "COMMIT" in text
        assert "|" in text

    def test_aborted_line_annotated(self):
        text = run_system(force_no=True).timeline()
        assert "ABORT" in text
        assert "NO@S2" in text
        assert "CT@S1" in text

    def test_empty_system(self):
        assert System().timeline() == "(no transactions)"


class TestLockGantt:
    def test_bars_for_held_keys(self):
        system = run_system()
        text = system.lock_gantt("S1")
        assert "locks at S1" in text
        assert "k0" in text
        assert "#" in text

    def test_key_filter(self):
        system = run_system()
        assert "k0" not in system.lock_gantt("S1", keys=["nope"])

    def test_no_holds(self):
        assert "(no lock holds)" in System().lock_gantt("S1")


class TestMarkingAudit:
    def test_transitions_listed(self):
        system = run_system(force_no=True, protocol="P1")
        text = system.marking_audit()
        assert "vote-abort" in text or "decision-abort" in text
        assert "S2" in text

    def test_clean_run_has_no_clearings(self):
        system = run_system(protocol="P1")
        text = system.marking_audit()
        assert "UDUM" not in text
        assert "quiescence" not in text
