"""Unit tests for metric aggregation, sweeps, and table formatting."""

from repro.harness import (
    ExperimentResult,
    Sweep,
    System,
    SystemConfig,
    format_table,
)
from repro.obs.metrics import mean, percentile
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


class TestStatHelpers:
    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([2.0, 4.0]) == 3.0

    def test_percentile(self):
        assert percentile([], 99) == 0.0
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert 49.0 <= percentile(values, 50) <= 51.0


class TestCollectMetrics:
    def run_system(self, force_no=False):
        system = System(SystemConfig())
        spec = GlobalTxnSpec(txn_id="T1", subtxns=[
            SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 1})]),
            SubtxnSpec(
                "S2", [SemanticOp("deposit", "k0", {"amount": 1})],
                vote=VotePolicy.FORCE_NO if force_no else VotePolicy.AUTO,
            ),
        ])
        system.run_transaction(spec)
        system.env.run()
        return system

    def test_commit_accounting(self):
        report = self.run_system().metrics()
        assert (report.committed, report.aborted) == (1, 0)
        assert report.abort_rate == 0.0
        assert report.mean_latency > 0
        # 2 sites x 3 round trips (SUBTXN, VOTE, DECISION) = 12 messages
        assert report.messages_total == 12

    def test_abort_accounting(self):
        report = self.run_system(force_no=True).metrics()
        assert (report.committed, report.aborted) == (0, 1)
        assert report.abort_rate == 1.0
        assert report.compensations == 1

    def test_lock_metrics_populated(self):
        report = self.run_system().metrics()
        assert report.mean_lock_hold > 0
        assert report.max_lock_hold >= report.mean_lock_hold
        assert report.forced_log_writes > 0

    def test_explicit_elapsed_drives_throughput(self):
        system = self.run_system()
        report = system.metrics(elapsed=10.0)
        assert report.throughput == 0.1


class TestSweepAndTable:
    def test_sweep_runs_each_value(self):
        sweep = Sweep(
            name="x", values=[1, 2, 3],
            fn=lambda v: {"double": float(v * 2)},
        )
        rows = sweep.run()
        assert [r.params["x"] for r in rows] == [1, 2, 3]
        assert [r.measures["double"] for r in rows] == [2.0, 4.0, 6.0]

    def test_format_table_alignment_and_precision(self):
        rows = [
            ExperimentResult(params={"p": 0.1},
                             measures={"value": 1.23456, "flag": True}),
            ExperimentResult(params={"p": 10.0},
                             measures={"value": 7.0, "flag": False}),
        ]
        text = format_table(rows, title="demo", precision=2)
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "p" in lines[1] and "value" in lines[1]
        assert "1.23" in text and "7.00" in text
        assert "True" in text and "False" in text
        # all rows share the same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")


class TestResultPersistence:
    def rows(self):
        return [
            ExperimentResult(params={"p": 0.1}, measures={"v": 1.5}),
            ExperimentResult(params={"p": 0.2}, measures={"v": 2.5}),
        ]

    def test_save_load_roundtrip(self, tmp_path):
        from repro.harness.experiment import load_results, save_results

        path = tmp_path / "rows.json"
        save_results(self.rows(), str(path))
        loaded = load_results(str(path))
        assert [r.as_row() for r in loaded] == [
            r.as_row() for r in self.rows()
        ]

    def test_markdown_rendering(self):
        from repro.harness.experiment import to_markdown

        text = to_markdown(self.rows(), title="demo", precision=1)
        assert "**demo**" in text
        assert "| p | v |" in text
        assert "| 0.1 | 1.5 |" in text
        assert text.count("|---|") == 1

    def test_markdown_empty(self):
        from repro.harness.experiment import to_markdown

        assert "(no rows)" in to_markdown([], title="x")
