"""The deprecated free-function entry points must warn and still work."""

import pytest

from repro.harness.metrics import collect_metrics
from repro.harness.trace import lock_gantt, marking_audit, transaction_timeline
from repro.obs import metrics as obs_metrics
from tests.obs.test_events import observed_workload
from tests.obs.test_spans import run_observed


class TestMetricsShim:
    def test_reexports_are_the_same_objects(self):
        from repro.harness import metrics as shim

        assert shim.MetricsReport is obs_metrics.MetricsReport
        assert shim.mean is obs_metrics.mean
        assert shim.percentile is obs_metrics.percentile

    def test_collect_metrics_warns(self):
        system = run_observed()
        with pytest.warns(DeprecationWarning, match="System.metrics"):
            collect_metrics(system)

    def test_collect_metrics_matches_system_metrics(self):
        # The acceptance check: on a workload, the redesigned surface
        # agrees with the old entry point on the headline counters.
        system, elapsed = observed_workload(seed=7, n=12)
        new = system.metrics(elapsed)
        with pytest.warns(DeprecationWarning):
            old = collect_metrics(system, elapsed)
        assert new.committed == old.committed
        assert new.aborted == old.aborted
        assert new.messages_total == old.messages_total


class TestTraceShims:
    def test_transaction_timeline(self):
        system = run_observed()
        with pytest.warns(DeprecationWarning, match="System.timeline"):
            text = transaction_timeline(system)
        assert text == system.timeline()

    def test_lock_gantt(self):
        system = run_observed()
        with pytest.warns(DeprecationWarning, match="System.lock_gantt"):
            text = lock_gantt(system, "S1")
        assert text == system.lock_gantt("S1")

    def test_marking_audit(self):
        system = run_observed(force_no=True)
        with pytest.warns(DeprecationWarning, match="System.marking_audit"):
            text = marking_audit(system)
        assert text == system.marking_audit()
