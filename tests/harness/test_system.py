"""Unit tests for the System assembly and its helpers."""

import pytest

from repro.commit import CommitScheme
from repro.core.marks import MarkingDirectory
from repro.core.protocols import P2Protocol
from repro.harness import System, SystemConfig
from repro.locking.modes import LockMode
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def spec(txn_id="T1", sites=("S1", "S2")):
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec(s, [SemanticOp("deposit", "k0", {"amount": 1})])
        for s in sites
    ])


class TestAssembly:
    def test_default_build(self):
        system = System()
        assert sorted(system.sites) == ["S1", "S2", "S3"]
        assert sorted(system.participants) == ["S1", "S2", "S3"]
        assert system.sites["S1"].store.get("k0") == 100

    def test_protocol_selection(self):
        for name in ("none", "P1", "P2", "SIMPLE"):
            system = System(SystemConfig(protocol=name))
            assert system.marking.name == ("none" if name == "none" else name)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="P1, P2, SIMPLE, none, saga"):
            SystemConfig(protocol="P9")

    def test_marks_key_only_with_protocol(self):
        assert System(SystemConfig(protocol="P1")).sites["S1"].marks_key
        assert System(SystemConfig(protocol="none")).sites["S1"].marks_key is None

    def test_nonpositive_metrics_window_rejected(self):
        with pytest.raises(ValueError, match="metrics_window"):
            SystemConfig(metrics_window=0.0)

    def test_vote_timeout_override_reaches_commit_config(self):
        # The top-level sweep knob (repro compare --vote-timeout) rewrites
        # the CommitConfig so the coordinator sees the swept value.
        config = SystemConfig(vote_timeout=5.0)
        assert config.commit.vote_timeout == 5.0
        assert SystemConfig().commit.vote_timeout != 5.0

    def test_nonpositive_vote_timeout_rejected(self):
        with pytest.raises(ValueError, match="vote_timeout"):
            SystemConfig(vote_timeout=-1.0)

    def test_scheme_selects_engine(self):
        # The registry is the only construction path: each scheme builds
        # its own participant type, and only PAXOS spawns acceptors.
        paxos = System(SystemConfig(scheme=CommitScheme.PAXOS))
        assert sorted(paxos.acceptors) == ["acc.1", "acc.2", "acc.3"]
        short = System(SystemConfig(scheme=CommitScheme.SHORT))
        assert short.acceptors == {}
        assert type(short.participants["S1"]).__name__ == "ShortParticipant"

    def test_protocol_instance_adopted(self):
        directory = MarkingDirectory()
        protocol = P2Protocol(directory=directory)
        system = System(SystemConfig(protocol=protocol))
        assert system.marking is protocol
        assert system.directory is directory
        assert system.directory.bus is system.env.bus
        assert system.sites["S1"].marks_key  # treated as a real protocol

    def test_config_knobs_threaded(self):
        system = System(SystemConfig(
            protocol="P1", quiescence_clearing=False, p1_eager_rule=False,
            op_duration=2.0,
        ))
        assert not system.directory.quiescence_enabled
        assert not system.marking.eager_rule
        assert system.sites["S1"].op_duration == 2.0


class TestRunning:
    def test_run_transaction_returns_outcome(self):
        system = System()
        outcome = system.run_transaction(spec())
        assert outcome.committed
        assert outcome.txn_id == "T1"
        assert system.outcomes == [outcome]

    def test_submit_stream_staggers_arrivals(self):
        system = System()
        specs = [spec(f"T{i}") for i in range(1, 6)]
        system.env.run(system.submit_stream(specs, arrival_mean=5.0))
        starts = sorted(o.start_time for o in system.outcomes)
        assert len(starts) == 5
        assert starts[0] > 0.0
        assert len(set(starts)) == 5  # all distinct

    def test_next_local_id_dense(self):
        system = System()
        assert [system.next_local_id() for _ in range(3)] == ["L1", "L2", "L3"]

    def test_effective_regular_nodes_excludes_aborted(self):
        system = System(SystemConfig(scheme=CommitScheme.O2PC))
        good = spec("T1")
        bad = spec("T2")
        bad.subtxns[1].vote = VotePolicy.FORCE_NO
        system.run_transaction(good)
        system.run_transaction(bad)
        system.env.run()
        effective = system.effective_regular_nodes()
        assert "T1" in effective
        assert "T2" not in effective

    def test_check_correctness_strict_and_effective(self):
        system = System()
        system.run_transaction(spec())
        system.check_correctness()
        system.check_correctness(strict=True)

    def test_run_local_retries_after_lock_timeout(self):
        system = System(SystemConfig(lock_timeout=2.0, observability=True))
        site = system.sites["S1"]
        site.locks.acquire("B1", "k0", LockMode.X)

        def releaser():
            yield system.env.timeout(5.0)
            site.locks.release_all("B1")

        system.env.process(releaser())
        proc = system.run_local(
            "S1", "L1", [SemanticOp("deposit", "k0", {"amount": 1})],
        )
        assert system.env.run(proc) is True
        timeouts = [
            e for e in system.events() if e.kind == "lock.timeout"
        ]
        assert timeouts and timeouts[0].txn_id == "L1"

    def test_global_history_and_sg_views(self):
        system = System()
        system.run_transaction(spec())
        history = system.global_history()
        assert history.sites_of("T1") == ["S1", "S2"]
        gsg = system.global_sg()
        assert "T1" in gsg.nodes
