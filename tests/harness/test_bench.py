"""The bench suite: pinned workloads, artifact shape, baseline gating.

The real pinned sizes run via ``repro bench`` (CI and EXPERIMENTS.md);
here every workload runs at toy size to keep tier-1 fast, and the CLI gate
is exercised against a stubbed suite so its pass/regress/no-baseline paths
are pinned without re-benchmarking.
"""

import json

from repro.cli import main
from repro.harness.bench import (
    GATED_METRICS,
    _percentile,
    bench_check,
    bench_scale,
    bench_sg,
    bench_throughput,
    compare_to_baseline,
    to_json,
)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0]
        assert _percentile(samples, 0) == 1.0
        assert _percentile(samples, 50) == 3.0
        assert _percentile(samples, 100) == 5.0

    def test_single_sample(self):
        assert _percentile([2.5], 95) == 2.5


class TestWorkloads:
    def test_bench_check_tiny(self):
        metrics = bench_check(max_schedules=5, repeats=1)
        assert metrics["schedules"] == 5.0
        assert metrics["schedules_per_s"] > 0
        assert metrics["p50_wall_s"] <= metrics["p95_wall_s"]

    def test_bench_throughput_tiny(self):
        metrics = bench_throughput(transactions=5, repeats=1)
        assert metrics["transactions"] == 5.0
        assert metrics["txns_per_s"] > 0

    def test_bench_scale_tiny(self):
        metrics = bench_scale(
            sites=4, transactions=20, keys_per_site=8, repeats=1,
        )
        assert metrics["sites"] == 4.0
        assert metrics["transactions"] == 20.0
        assert metrics["txns_per_s"] > 0
        assert metrics["committed"] > 0
        assert 0.0 <= metrics["abort_rate"] <= 1.0
        assert metrics["lock_hold_p50"] <= metrics["lock_hold_p99"]

    def test_bench_sg_tiny_cross_checks_scan(self):
        # scan_cap >= size, so the index/scan equality assertion runs.
        results = bench_sg(sizes=(200,), scan_cap=200)
        metrics = results["ops_200"]
        assert metrics["ops"] == 200.0
        assert "speedup_vs_scan" in metrics
        assert metrics["index_build_s"] > 0

    def test_bench_sg_respects_scan_cap(self):
        results = bench_sg(sizes=(300,), scan_cap=200)
        assert "speedup_vs_scan" not in results["ops_300"]


class TestBaselineGate:
    CURRENT = {
        "results": {
            "check": {"schedules_per_s": 70.0, "p50_wall_s": 9.9},
            "ops_1000": {"speedup_vs_scan": 12.0},
        }
    }

    def test_within_tolerance_passes(self):
        baseline = {
            "results": {
                "check": {"schedules_per_s": 80.0},
                "ops_1000": {"speedup_vs_scan": 10.0},
            }
        }
        assert compare_to_baseline(self.CURRENT, baseline, 0.25) == []

    def test_regression_beyond_tolerance_reported(self):
        baseline = {"results": {"check": {"schedules_per_s": 100.0}}}
        lines = compare_to_baseline(self.CURRENT, baseline, 0.25)
        assert len(lines) == 1
        assert "check.schedules_per_s" in lines[0]

    def test_wall_percentiles_never_gate(self):
        # p50 regressed 100x, but percentiles are informational only.
        baseline = {"results": {"check": {"p50_wall_s": 0.1}}}
        assert compare_to_baseline(self.CURRENT, baseline, 0.25) == []

    def test_missing_metric_skipped_until_baselined(self):
        assert compare_to_baseline(self.CURRENT, {"results": {}}, 0.25) == []

    def test_to_json_is_stable(self):
        payload = {"b": 1, "a": {"y": 2, "x": 3}}
        assert to_json(payload) == to_json(payload)
        assert to_json(payload).endswith("\n")
        assert json.loads(to_json(payload)) == payload


def _stub_suite(values):
    def run_suite(smoke=False, seed=0, jobs=1):
        return {
            "BENCH_check.json": {
                "schema": 1, "smoke": smoke, "seed": seed,
                "results": {"check": dict(values)},
            },
            "BENCH_sg.json": {
                "schema": 1, "smoke": smoke, "seed": seed,
                "results": {"ops_1000": {"speedup_vs_scan": 10.0}},
            },
        }
    return run_suite


class TestBenchCli:
    def _bench(self, tmp_path, *extra):
        return main([
            "bench", "--out", str(tmp_path / "out"),
            "--baseline", str(tmp_path / "baselines"), *extra,
        ])

    def test_update_baseline_then_pass(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.harness.bench.run_suite",
            _stub_suite({"schedules_per_s": 100.0, "p50_wall_s": 0.5}),
        )
        assert self._bench(tmp_path, "--update-baseline") == 0
        written = json.loads(
            (tmp_path / "baselines" / "BENCH_check.json").read_text()
        )
        assert written["results"]["check"]["schedules_per_s"] == 100.0
        assert (tmp_path / "out" / "BENCH_sg.json").exists()
        assert self._bench(tmp_path) == 0
        assert "within 25% of baseline" in capsys.readouterr().out

    def test_regression_fails_the_gate(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.harness.bench.run_suite",
            _stub_suite({"schedules_per_s": 100.0}),
        )
        assert self._bench(tmp_path, "--update-baseline") == 0
        monkeypatch.setattr(
            "repro.harness.bench.run_suite",
            _stub_suite({"schedules_per_s": 50.0}),
        )
        assert self._bench(tmp_path) == 1
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        assert "check.schedules_per_s" in out

    def test_scale_flag_runs_scale_workload(self, tmp_path, monkeypatch,
                                            capsys):
        def stub_scale(smoke=False, seed=0):
            return {
                "BENCH_scale.json": {
                    "schema": 1, "smoke": smoke, "seed": seed,
                    "results": {"scale": {"txns_per_s": 1000.0}},
                },
            }

        monkeypatch.setattr("repro.harness.bench.run_scale", stub_scale)
        assert self._bench(tmp_path, "--scale") == 0
        written = json.loads(
            (tmp_path / "out" / "BENCH_scale.json").read_text()
        )
        assert written["results"]["scale"]["txns_per_s"] == 1000.0
        assert not (tmp_path / "out" / "BENCH_check.json").exists()

    def test_missing_baseline_skips_gate(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.setattr(
            "repro.harness.bench.run_suite",
            _stub_suite({"schedules_per_s": 100.0}),
        )
        assert self._bench(tmp_path) == 0
        out = capsys.readouterr().out
        assert "skipping gate" in out


def test_gated_metrics_are_throughput_style():
    # The gate compares higher-is-better metrics only; wall times would
    # need the comparison inverted and are deliberately not listed.
    for metric in GATED_METRICS:
        assert not metric.endswith("_wall_s")
