"""SimulationDeadlock diagnostics: the wait-for graph rides the exception."""

import pytest

from repro.errors import SimulationDeadlock
from repro.harness.system import System, SystemConfig
from repro.sim.engine import Environment
from repro.txn.operations import WriteOp


class TestEnvironmentHook:
    def test_diagnostic_text_appended_to_deadlock(self):
        env = Environment()
        env.add_deadlock_diagnostic(lambda: "extra context line")
        stop = env.event()  # never triggered
        with pytest.raises(SimulationDeadlock) as excinfo:
            env.run(stop)
        assert "extra context line" in str(excinfo.value)

    def test_failing_diagnostic_never_masks_the_deadlock(self):
        env = Environment()

        def broken() -> str:
            raise RuntimeError("diagnostic bug")

        env.add_deadlock_diagnostic(broken)
        with pytest.raises(SimulationDeadlock):
            env.run(env.event())

    def test_empty_diagnostics_add_nothing(self):
        env = Environment()
        env.add_deadlock_diagnostic(lambda: "")
        with pytest.raises(SimulationDeadlock) as excinfo:
            env.run(env.event())
        assert str(excinfo.value).count("\n") == 0


class TestSystemSnapshot:
    def test_deadlock_message_includes_waits_for_edges(self):
        """A transaction left waiting on a held lock when the queue drains
        produces a deadlock whose message names the blocked edge."""
        system = System(SystemConfig(n_sites=1))
        site = system.sites["S1"]
        site.ltm.begin("L1")
        holder = system.env.process(
            site.ltm.run_ops("L1", [WriteOp("k0", 1)])
        )
        system.env.run(holder)  # L1 now holds X(k0) and never releases
        site.ltm.begin("L2")
        blocked = system.env.process(
            site.ltm.run_ops("L2", [WriteOp("k0", 2)])
        )
        with pytest.raises(SimulationDeadlock) as excinfo:
            system.env.run(blocked)
        message = str(excinfo.value)
        assert "lock wait-for graph at deadlock" in message
        assert "S1" in message
        assert "L2 -> L1" in message
