"""The head-to-head comparison harness behind ``repro compare``.

One module-scoped run of :func:`compare_schemes` backs most assertions
(each call simulates a contention leg plus a 400-unit crash drill per
scheme, so re-running it per test would dominate the suite).
"""

import pytest

from repro.harness.bench import SCHEMA_VERSION
from repro.harness.compare import compare_schemes, run_compare
from repro.protocols import ENGINES


@pytest.fixture(scope="module")
def results():
    return compare_schemes(seed=0, transactions=6)


EXPECTED_METRICS = {
    "transactions", "txns_per_s", "committed", "abort_rate",
    "compensation_rate", "messages_per_txn", "lock_hold_p50",
    "lock_hold_p99", "blocking_time", "decided_in_outage",
}


class TestCoverage:
    def test_every_registered_scheme_gets_a_block(self, results):
        expected = sorted(
            f"compare_{s.name}" for s in ENGINES
        )
        assert sorted(results) == expected

    def test_every_block_carries_the_full_metric_set(self, results):
        for key, block in results.items():
            assert set(block) == EXPECTED_METRICS, key
            assert block["transactions"] == 6.0
            assert block["txns_per_s"] > 0.0, key


class TestProtocolNarrative:
    """The numbers must tell the paper's story, not just exist."""

    def test_paxos_terminates_during_the_outage(self, results):
        assert results["compare_PAXOS"]["decided_in_outage"] == 1.0
        assert results["compare_TWO_PL"]["decided_in_outage"] == 0.0
        assert (
            results["compare_PAXOS"]["blocking_time"]
            < results["compare_TWO_PL"]["blocking_time"]
        )

    def test_paxos_pays_in_messages(self, results):
        # 2F+1 acceptors turn every vote into a broadcast: the message
        # bill must clearly exceed the plain 2PC round count.
        assert (
            results["compare_PAXOS"]["messages_per_txn"]
            > results["compare_TWO_PL"]["messages_per_txn"]
        )

    def test_short_never_compensates(self, results):
        assert results["compare_SHORT"]["compensation_rate"] == 0.0
        assert results["compare_TWO_PL"]["compensation_rate"] == 0.0
        # O2PC is the only scheme that trades aborts for compensating
        # actions (the workload forces NO votes at 15%).
        assert results["compare_O2PC"]["compensation_rate"] > 0.0

    def test_early_release_shortens_the_lock_tail(self, results):
        # O2PC and Short-Commit release at the vote; the 2PC family holds
        # through the decision round-trip.
        for early in ("compare_O2PC", "compare_SHORT"):
            assert (
                results[early]["lock_hold_p99"]
                <= results["compare_TWO_PL"]["lock_hold_p99"]
            ), early


class TestVoteTimeoutSweep:
    def test_sweep_produces_one_block_per_timeout(self):
        results = compare_schemes(
            seed=0, transactions=2, vote_timeouts=(5.0, 20.0),
        )
        paxos_keys = sorted(k for k in results if "PAXOS" in k)
        assert paxos_keys == ["compare_PAXOS@vt20", "compare_PAXOS@vt5"]
        assert results["compare_PAXOS@vt5"]["vote_timeout"] == 5.0
        assert results["compare_PAXOS@vt20"]["vote_timeout"] == 20.0


class TestPayload:
    def test_run_compare_emits_the_bench_artifact_shape(self):
        artifacts = run_compare(smoke=True, seed=0)
        assert sorted(artifacts) == ["BENCH_compare.json"]
        payload = artifacts["BENCH_compare.json"]
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["smoke"] is True
        assert payload["seed"] == 0
        # The baseline gate keys on result blocks named compare_*.
        assert all(k.startswith("compare_") for k in payload["results"])
