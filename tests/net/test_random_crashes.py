"""Seeded random crash schedules (FailureInjector.schedule_random)."""

import pytest

from repro.net.failures import (
    FailureInjector,
    RandomCrashConfig,
    random_crash_plans,
)
from repro.net.network import Network
from repro.sim.engine import Environment
from repro.sim.rng import Rng


def _injector():
    env = Environment()
    return env, FailureInjector(env, Network(env, rng=Rng(9)))


class TestDrawing:
    def test_same_seed_same_plans(self):
        plans1 = random_crash_plans(Rng(42), ["S1", "S2", "S3"])
        plans2 = random_crash_plans(Rng(42), ["S1", "S2", "S3"])
        assert plans1 == plans2

    def test_different_seeds_differ(self):
        plans1 = random_crash_plans(Rng(1), ["S1", "S2", "S3"])
        plans2 = random_crash_plans(Rng(2), ["S1", "S2", "S3"])
        assert plans1 != plans2

    def test_plans_sorted_by_crash_time(self):
        plans = random_crash_plans(
            Rng(7), ["S1", "S2"], RandomCrashConfig(n_crashes=8)
        )
        assert [p.at for p in plans] == sorted(p.at for p in plans)

    def test_config_bounds_respected(self):
        config = RandomCrashConfig(
            n_crashes=50, window=(10.0, 20.0),
            min_outage=1.0, max_outage=2.0,
        )
        for plan in random_crash_plans(Rng(3), ["S1"], config):
            assert 10.0 <= plan.at <= 20.0
            assert plan.duration is not None
            assert 1.0 <= plan.duration <= 2.0

    def test_permanent_probability_one_never_recovers(self):
        config = RandomCrashConfig(n_crashes=5, permanent_probability=1.0)
        plans = random_crash_plans(Rng(3), ["S1"], config)
        assert all(plan.duration is None for plan in plans)

    def test_no_sites_is_an_error(self):
        with pytest.raises(ValueError):
            random_crash_plans(Rng(0), [])


class TestScheduling:
    def test_schedule_random_executes_deterministically(self):
        observed = []
        for _ in range(2):
            env, injector = _injector()
            for site in ("S1", "S2"):
                injector.register_site(site)
            plans = injector.schedule_random(
                Rng(11), ["S1", "S2"],
                RandomCrashConfig(n_crashes=3, window=(0.0, 30.0)),
            )
            env.run(until=100.0)
            observed.append([
                (o.site_id, o.start, o.end) for o in injector.outages
            ])
            assert len(plans) == 3
        assert observed[0] == observed[1]
        assert observed[0]  # some outage actually happened

    def test_scheduled_sites_recover_after_outage(self):
        env, injector = _injector()
        injector.schedule_random(
            Rng(5), ["S1"],
            RandomCrashConfig(n_crashes=1, window=(1.0, 2.0),
                              min_outage=3.0, max_outage=4.0),
        )
        env.run(until=50.0)
        assert injector.is_up("S1")
        outage = injector.outages[0]
        assert outage.end is not None
        assert 3.0 <= outage.end - outage.start <= 4.0
