"""Shared conformance suite for both Transport implementations.

The protocol core (Coordinator/Participant) is transport-agnostic; that
only holds if every Transport honors the same contract (documented on
:class:`repro.net.transport.Transport`):

1. ``register`` creates a FIFO inbox; ``receive`` yields messages in
   delivery order; ``send`` to a registered endpoint delivers.
2. ``send`` NEVER raises for an unreachable recipient — the message is
   dropped and counted in ``dropped``; the sender learns only by timeout.
3. ``sent`` / ``delivered`` / ``dropped`` counters are per-``MsgType``.

Rule 2 is the failure-semantics mapping this PR documents: the simulated
network's *severed-in-flight* drop (a message on a link that is cut
before delivery) corresponds to the TCP transport's *connection refused /
reset* drop (the daemon died before the frame was handled).  In both
worlds the bytes vanish, nothing is raised at the sender, and the
protocol's timeout machinery is the only failure detector.
"""

import asyncio

from repro.net.message import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.net.transport import Transport
from repro.rt.config import local_cluster
from repro.rt.pump import RealtimePump
from repro.rt.transport import TcpTransport
from repro.sim.engine import Environment
from repro.sim.rng import Rng


def msg(recipient, sender="A", msg_type=MsgType.SUBTXN_REQ, txn="T1"):
    return Message(
        msg_type=msg_type, sender=sender, recipient=recipient,
        txn_id=txn, payload={"n": 1},
    )


class TestProtocolClass:
    def test_both_implementations_satisfy_the_protocol(self):
        assert issubclass(Network, Transport)
        assert issubclass(TcpTransport, Transport)

    def test_transport_is_runtime_checkable(self):
        env = Environment()
        network = Network(env, rng=Rng(0), latency=LatencyModel(base=1.0))
        assert isinstance(network, Transport)


class TestSimulatedNetworkContract:
    def setup_method(self):
        self.env = Environment()
        self.net = Network(
            self.env, rng=Rng(0), latency=LatencyModel(base=1.0),
        )
        self.net.register("A")
        self.net.register("B")

    def drain(self):
        self.env.run()

    def test_send_delivers_to_registered_inbox(self):
        self.net.send(msg("B"))
        self.drain()
        assert len(self.net.inbox("B").items) == 1
        assert self.net.delivered[MsgType.SUBTXN_REQ] == 1

    def test_fifo_order(self):
        for i in range(3):
            self.net.send(msg("B", txn=f"T{i}"))
        self.drain()
        txns = [m.txn_id for m in self.net.inbox("B").items]
        assert txns == ["T0", "T1", "T2"]

    def test_send_to_down_recipient_drops_without_raising(self):
        self.net.mark_down("B")
        self.net.send(msg("B"))  # must not raise
        self.drain()
        assert len(self.net.inbox("B").items) == 0
        assert self.net.dropped[MsgType.SUBTXN_REQ] == 1

    def test_severed_in_flight_drops_without_raising(self):
        # The message is already on the wire when the link is cut: the
        # drop happens at (attempted) delivery time, not send time.
        self.net.send(msg("B"))
        self.net.sever("A", "B")
        self.drain()
        assert len(self.net.inbox("B").items) == 0
        assert self.net.dropped[MsgType.SUBTXN_REQ] == 1

    def test_counters_are_per_msg_type(self):
        self.net.send(msg("B", msg_type=MsgType.VOTE_REQ))
        self.net.send(msg("B", msg_type=MsgType.DECISION))
        self.drain()
        assert self.net.sent[MsgType.VOTE_REQ] == 1
        assert self.net.sent[MsgType.DECISION] == 1
        assert self.net.total_sent() == 2


class TestTcpTransportContract:
    """The same contract, over real sockets.

    One listening transport ("S1", the daemon side) and one pure client
    transport.  The client's sends cross a real TCP connection; S1's
    replies ride the learned return route.
    """

    def run_async(self, coro):
        return asyncio.run(coro)

    @staticmethod
    async def make_pair():
        cluster = local_cluster(["S1"], data_dir=".")
        server_env = Environment()
        server_pump = RealtimePump(server_env)
        server = TcpTransport(server_env, cluster, server_pump, "S1")
        server.register("S1")
        await server.serve()
        client_env = Environment()
        client_pump = RealtimePump(client_env)
        client = TcpTransport(client_env, cluster, client_pump)
        client.register("A")
        return server, client

    @staticmethod
    async def settle():
        # Let the event loop run the connection/read tasks.
        for _ in range(20):
            await asyncio.sleep(0.005)

    def test_send_delivers_across_a_socket(self):
        async def scenario():
            server, client = await self.make_pair()
            try:
                client.send(msg("S1"))
                await self.settle()
                items = server.inbox("S1").items
                assert len(items) == 1
                assert items[0].txn_id == "T1"
                assert items[0].payload == {"n": 1}
                assert client.sent[MsgType.SUBTXN_REQ] == 1
                assert server.delivered[MsgType.SUBTXN_REQ] == 1
            finally:
                await client.close()
                await server.close()

        self.run_async(scenario())

    def test_fifo_order_across_a_socket(self):
        async def scenario():
            server, client = await self.make_pair()
            try:
                for i in range(3):
                    client.send(msg("S1", txn=f"T{i}"))
                await self.settle()
                txns = [m.txn_id for m in server.inbox("S1").items]
                assert txns == ["T0", "T1", "T2"]
            finally:
                await client.close()
                await server.close()

        self.run_async(scenario())

    def test_reply_rides_the_learned_return_route(self):
        async def scenario():
            server, client = await self.make_pair()
            try:
                client.send(msg("S1"))
                await self.settle()
                # S1 replies to "A" — not a configured site, so the only
                # way back is the connection the request arrived on.
                server.send(msg("A", sender="S1",
                                msg_type=MsgType.SUBTXN_ACK))
                await self.settle()
                items = client.inbox("A").items
                assert len(items) == 1
                assert items[0].msg_type is MsgType.SUBTXN_ACK
            finally:
                await client.close()
                await server.close()

        self.run_async(scenario())

    def test_connection_refused_drops_without_raising(self):
        # The TCP analogue of the simulation's recipient-down drop: the
        # daemon is not listening, the connect is refused, the message is
        # counted dropped, and the sender sees no exception.
        async def scenario():
            cluster = local_cluster(["S1"], data_dir=".")  # nobody serves
            env = Environment()
            client = TcpTransport(env, cluster, RealtimePump(env))
            client.register("A")
            try:
                client.send(msg("S1"))  # must not raise
                await self.settle()
                assert client.dropped[MsgType.SUBTXN_REQ] == 1
                assert client.sent[MsgType.SUBTXN_REQ] == 1
            finally:
                await client.close()

        self.run_async(scenario())

    def test_connection_reset_maps_to_severed_in_flight(self):
        # Establish a live connection, kill the server (the sever), then
        # send again: the frame hits a dead peer.  Whether the OS surfaces
        # that as an immediate reset or the frame silently vanishes, the
        # contract is the same as the simulation's severed-in-flight rule:
        # nothing raises at the sender and the message is never delivered.
        async def scenario():
            server, client = await self.make_pair()
            client.send(msg("S1"))
            await self.settle()
            assert server.delivered[MsgType.SUBTXN_REQ] == 1
            await server.close()  # sever every established link
            await self.settle()
            try:
                client.send(msg("S1", txn="T2"))  # must not raise
                await self.settle()
                # Never delivered; once the death is observed it is a
                # counted drop (refused re-dial), exactly like the
                # simulation counting severed_in_flight.
                assert server.delivered[MsgType.SUBTXN_REQ] == 1
                assert client.dropped[MsgType.SUBTXN_REQ] >= 1
            finally:
                await client.close()

        self.run_async(scenario())

    def test_unreachable_endpoint_drops_at_the_sender(self):
        # No cluster entry and no learned route: the client itself must
        # count the drop (mirror of the simulation's unknown-endpoint
        # handling) rather than raise into protocol code.
        async def scenario():
            server, client = await self.make_pair()
            try:
                client.send(msg("coord.Tx", sender="A",
                                msg_type=MsgType.ACK))
                await self.settle()
                assert client.dropped[MsgType.ACK] == 1
            finally:
                await client.close()
                await server.close()

        self.run_async(scenario())

    def test_frame_for_unhosted_endpoint_drops_at_the_receiver(self):
        # A frame that arrives for an endpoint the daemon does not host
        # is counted dropped by the receiving transport.
        from repro.rt.wire import message_to_json, write_frame

        async def scenario():
            server, client = await self.make_pair()
            try:
                spec = server.cluster.site("S1")
                _, writer = await asyncio.open_connection(*spec.address)
                await write_frame(
                    writer, message_to_json(msg("S9", sender="A",
                                                msg_type=MsgType.ACK)),
                )
                await self.settle()
                assert server.dropped[MsgType.ACK] == 1
                writer.close()
            finally:
                await client.close()
                await server.close()

        self.run_async(scenario())


class TestFramingConformance:
    """Batched and singleton framing are observationally identical.

    The coalescing sender packs every same-drain message for one peer
    into one multi-frame payload; a legacy (or scripted-test) peer sends
    one plain frame per message.  The receiver must not be able to tell:
    same inbox order, same per-type delivered counters.  The simulated
    Network is the third point of the triangle — its same-tick burst
    defines the expected observable behavior.
    """

    def burst(self, recipient):
        return [
            msg(recipient, msg_type=MsgType.SUBTXN_REQ, txn="T0"),
            msg(recipient, msg_type=MsgType.VOTE_REQ, txn="T1"),
            msg(recipient, msg_type=MsgType.DECISION, txn="T2"),
        ]

    @staticmethod
    def observed(transport, endpoint):
        items = transport.inbox(endpoint).items
        return (
            [(m.msg_type, m.txn_id) for m in items],
            {t: n for t, n in transport.delivered.items() if n},
        )

    def expected(self):
        # The simulated network's same-tick burst: the reference order.
        env = Environment()
        net = Network(env, rng=Rng(0), latency=LatencyModel(base=1.0))
        net.register("A")
        net.register("B")
        for m in self.burst("B"):
            net.send(m)
        env.run()
        return self.observed(net, "B")

    def test_coalesced_send_matches_the_sim_reference(self):
        async def scenario():
            server, client = await TestTcpTransportContract.make_pair()
            try:
                for m in self.burst("S1"):
                    client.send(m)
                await TestTcpTransportContract.settle()
                order, delivered = self.observed(server, "S1")
                # the burst really was coalesced: fewer frames than
                # messages left the client
                assert client.messages_framed == 3
                assert client.frames_sent < client.messages_framed
                return order, delivered
            finally:
                await client.close()
                await server.close()

        expected_order, expected_delivered = self.expected()
        order, delivered = asyncio.run(scenario())
        assert order == expected_order
        assert delivered == expected_delivered

    def test_legacy_singleton_frames_match_the_sim_reference(self):
        from repro.rt.wire import message_to_json, write_frame

        async def scenario():
            server, client = await TestTcpTransportContract.make_pair()
            try:
                spec = server.cluster.site("S1")
                _, writer = await asyncio.open_connection(*spec.address)
                for m in self.burst("S1"):
                    await write_frame(writer, message_to_json(m))
                await TestTcpTransportContract.settle()
                writer.close()
                return self.observed(server, "S1")
            finally:
                await client.close()
                await server.close()

        assert asyncio.run(scenario()) == self.expected()

    def test_explicit_batch_envelope_matches_the_sim_reference(self):
        from repro.rt.wire import encode_batch, message_to_json

        async def scenario():
            server, client = await TestTcpTransportContract.make_pair()
            try:
                spec = server.cluster.site("S1")
                _, writer = await asyncio.open_connection(*spec.address)
                frames = encode_batch(
                    [message_to_json(m) for m in self.burst("S1")]
                )
                assert len(frames) == 1  # one envelope, one write
                writer.write(frames[0])
                await writer.drain()
                await TestTcpTransportContract.settle()
                writer.close()
                return self.observed(server, "S1")
            finally:
                await client.close()
                await server.close()

        assert asyncio.run(scenario()) == self.expected()

    def test_malformed_batch_closes_the_connection_not_the_daemon(self):
        from repro.rt.wire import encode_frame

        async def scenario():
            server, client = await TestTcpTransportContract.make_pair()
            try:
                spec = server.cluster.site("S1")
                _, writer = await asyncio.open_connection(*spec.address)
                writer.write(encode_frame(
                    {"kind": "batch", "frames": "not-a-list"}
                ))
                await writer.drain()
                await TestTcpTransportContract.settle()
                writer.close()
                # The daemon survives and still serves well-formed peers.
                client.send(msg("S1"))
                await TestTcpTransportContract.settle()
                assert server.delivered[MsgType.SUBTXN_REQ] == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())
