"""Unit tests for the network substrate."""

import pytest

from repro.errors import UnknownSiteError
from repro.net import LatencyModel, Message, MsgType, Network
from repro.sim import Environment, Rng


def make_net(**kwargs):
    env = Environment()
    net = Network(env, rng=Rng(0), **kwargs)
    return env, net


def msg(sender="S1", recipient="S2", mtype=MsgType.VOTE_REQ, txn="T1", **payload):
    return Message(
        msg_type=mtype, sender=sender, recipient=recipient, txn_id=txn,
        payload=payload,
    )


def test_delivery_after_base_latency():
    env, net = make_net(latency=LatencyModel(base=2.5))
    net.register("S1")
    net.register("S2")
    received = []

    def receiver(env):
        m = yield net.receive("S2")
        received.append((env.now, m.payload["x"]))

    env.process(receiver(env))
    net.send(msg(x=7))
    env.run()
    assert received == [(2.5, 7)]


def test_message_stamped_with_times():
    env, net = make_net(latency=LatencyModel(base=1.0))
    net.register("S1")
    net.register("S2")
    m = msg()

    def receiver(env):
        got = yield net.receive("S2")
        return got

    p = env.process(receiver(env))
    net.send(m)
    got = env.run(p)
    assert got.send_time == 0.0
    assert got.deliver_time == 1.0


def test_unknown_recipient_raises():
    env, net = make_net()
    net.register("S1")
    with pytest.raises(UnknownSiteError):
        net.send(msg(recipient="nowhere"))
    with pytest.raises(UnknownSiteError):
        net.inbox("nowhere")


def test_loss_probability_drops_messages():
    env, net = make_net(loss_probability=1.0)
    net.register("S1")
    net.register("S2")
    net.send(msg())
    env.run()
    assert net.dropped[MsgType.VOTE_REQ] == 1
    assert net.delivered[MsgType.VOTE_REQ] == 0
    assert len(net.inbox("S2")) == 0


def test_send_from_down_site_dropped():
    env, net = make_net()
    net.register("S1")
    net.register("S2")
    net.mark_down("S1")
    net.send(msg())
    env.run()
    assert net.dropped[MsgType.VOTE_REQ] == 1


def test_delivery_to_down_site_dropped_even_mid_flight():
    env, net = make_net(latency=LatencyModel(base=5.0))
    net.register("S1")
    net.register("S2")
    net.send(msg())

    def crasher(env):
        yield env.timeout(1)
        net.mark_down("S2")

    env.process(crasher(env))
    env.run()
    assert net.dropped[MsgType.VOTE_REQ] == 1
    assert net.delivered[MsgType.VOTE_REQ] == 0


def test_severed_link_drops_at_send():
    env, net = make_net()
    net.register("S1")
    net.register("S2")
    net.sever("S1", "S2")
    net.send(msg())
    env.run()
    assert net.dropped[MsgType.VOTE_REQ] == 1
    assert net.delivered[MsgType.VOTE_REQ] == 0


def test_severed_in_flight_dropped():
    env, net = make_net(latency=LatencyModel(base=5.0))
    net.register("S1")
    net.register("S2")
    net.send(msg())

    def severer(env):
        yield env.timeout(1)
        net.sever("S1", "S2")

    env.process(severer(env))
    env.run()
    assert net.dropped[MsgType.VOTE_REQ] == 1
    assert net.delivered[MsgType.VOTE_REQ] == 0
    assert len(net.inbox("S2")) == 0


def test_mark_down_clears_queued_inbox():
    env, net = make_net(latency=LatencyModel(base=0.0))
    net.register("S1")
    net.register("S2")
    net.send(msg())
    env.run()
    assert len(net.inbox("S2")) == 1
    net.mark_down("S2")
    assert len(net.inbox("S2")) == 0
    assert net.dropped[MsgType.VOTE_REQ] == 1


def test_recovered_site_receives_again():
    env, net = make_net(latency=LatencyModel(base=1.0))
    net.register("S1")
    net.register("S2")
    net.mark_down("S2")
    net.mark_up("S2")
    net.send(msg())
    env.run()
    assert net.delivered[MsgType.VOTE_REQ] == 1


def test_per_link_latency_override():
    env, net = make_net(latency=LatencyModel(base=1.0))
    for s in ("S1", "S2", "S3"):
        net.register(s)
    net.set_link_latency("S1", "S3", LatencyModel(base=9.0))
    arrivals = {}

    def receiver(env, site):
        yield net.receive(site)
        arrivals[site] = env.now

    env.process(receiver(env, "S2"))
    env.process(receiver(env, "S3"))
    net.send(msg(recipient="S2"))
    net.send(msg(recipient="S3"))
    env.run()
    assert arrivals == {"S2": 1.0, "S3": 9.0}


def test_latency_jitter_within_bounds():
    env, net = make_net(latency=LatencyModel(base=1.0, jitter=0.5))
    net.register("S1")
    net.register("S2")
    arrivals = []

    def receiver(env):
        for _ in range(20):
            yield net.receive("S2")
            arrivals.append(env.now)

    env.process(receiver(env))
    for _ in range(20):
        net.send(msg())
    env.run()
    assert all(1.0 <= t <= 1.5 for t in arrivals)


def test_counters_by_type():
    env, net = make_net(latency=LatencyModel(base=0.0))
    net.register("S1")
    net.register("S2")
    net.send(msg(mtype=MsgType.VOTE_REQ))
    net.send(msg(mtype=MsgType.VOTE))
    net.send(msg(mtype=MsgType.VOTE))
    env.run()
    assert net.total_sent() == 3
    assert net.counts_by_type() == {"VOTE": 2, "VOTE_REQ": 1}


def test_reply_addresses_sender():
    m = msg(sender="A", recipient="B")
    r = m.reply(MsgType.VOTE, {"vote": "YES"})
    assert r.sender == "B"
    assert r.recipient == "A"
    assert r.txn_id == m.txn_id
    assert r.payload == {"vote": "YES"}


def test_exponential_latency_tail():
    from repro.net import ExponentialLatency

    rng = Rng(3)
    model = ExponentialLatency(base=1.0, jitter=2.0)
    draws = [model.draw(rng) for _ in range(2000)]
    assert all(d >= 1.0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 2.6 < mean < 3.4  # base + exponential mean 2
    assert max(draws) > 8.0  # heavy tail visible


def test_exponential_latency_degenerates_without_jitter():
    from repro.net import ExponentialLatency

    model = ExponentialLatency(base=1.5, jitter=0.0)
    assert model.draw(Rng(0)) == 1.5


def test_exponential_latency_end_to_end():
    from repro.net import ExponentialLatency

    env = Environment()
    net = Network(env, rng=Rng(1), latency=ExponentialLatency(base=1.0, jitter=1.0))
    net.register("S1")
    net.register("S2")
    arrivals = []

    def receiver(env):
        for _ in range(10):
            yield net.receive("S2")
            arrivals.append(env.now)

    env.process(receiver(env))
    for _ in range(10):
        net.send(msg())
    env.run()
    assert len(arrivals) == 10
    assert all(t >= 1.0 for t in arrivals)
