"""Unit tests for the failure injector."""

from repro.net import FailureInjector, Network, SiteStatus
from repro.net.failures import CrashPlan
from repro.sim import Environment, Rng


def make_injector():
    env = Environment()
    net = Network(env, rng=Rng(0))
    inj = FailureInjector(env, net)
    return env, net, inj


def test_sites_start_up():
    env, net, inj = make_injector()
    inj.register_site("S1")
    assert inj.is_up("S1")
    assert inj.status("S1") is SiteStatus.UP
    # Unregistered sites default to UP.
    assert inj.is_up("S99")


def test_crash_and_recover_roundtrip():
    env, net, inj = make_injector()
    net.register("S1")
    inj.register_site("S1")
    inj.crash("S1")
    assert not inj.is_up("S1")
    assert net.is_down("S1")
    inj.recover("S1")
    assert inj.is_up("S1")
    assert not net.is_down("S1")


def test_crash_idempotent():
    env, net, inj = make_injector()
    net.register("S1")
    inj.crash("S1")
    inj.crash("S1")
    assert len(inj.outages) == 1
    inj.recover("S1")
    inj.recover("S1")
    assert inj.outages[0].end == 0.0


def test_scheduled_crash_plan_executes():
    env, net, inj = make_injector()
    net.register("S1")
    observed = []

    def watcher(env):
        yield env.timeout(5)
        observed.append(("at5", inj.is_up("S1")))
        yield env.timeout(10)
        observed.append(("at15", inj.is_up("S1")))

    inj.schedule(CrashPlan(site_id="S1", at=3.0, duration=8.0))
    env.process(watcher(env))
    env.run()
    assert observed == [("at5", False), ("at15", True)]


def test_permanent_crash_never_recovers():
    env, net, inj = make_injector()
    net.register("S1")
    inj.schedule(CrashPlan(site_id="S1", at=1.0, duration=None))
    env.run(until=100.0)
    assert not inj.is_up("S1")


def test_callbacks_fire():
    env, net, inj = make_injector()
    net.register("S1")
    events = []
    inj.on_crash(lambda s: events.append(("crash", s)))
    inj.on_recover(lambda s: events.append(("recover", s)))
    inj.crash("S1")
    inj.recover("S1")
    assert events == [("crash", "S1"), ("recover", "S1")]


def test_total_downtime_accumulates():
    env, net, inj = make_injector()
    net.register("S1")
    inj.schedule(CrashPlan(site_id="S1", at=2.0, duration=3.0))
    inj.schedule(CrashPlan(site_id="S1", at=10.0, duration=5.0))
    env.run()
    assert inj.total_downtime("S1") == 8.0


def test_total_downtime_open_outage_counts_to_now():
    env, net, inj = make_injector()
    net.register("S1")
    inj.schedule(CrashPlan(site_id="S1", at=1.0, duration=None))
    env.run(until=11.0)
    assert inj.total_downtime("S1") == 10.0
