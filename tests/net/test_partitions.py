"""Unit and integration tests for link failures (network partitions)."""

from repro.commit import CommitScheme
from repro.commit.base import CommitConfig
from repro.harness import System, SystemConfig
from repro.net import LatencyModel, Message, MsgType, Network
from repro.sim import Environment, Rng
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def make_net():
    env = Environment()
    net = Network(env, rng=Rng(0), latency=LatencyModel(base=1.0))
    for s in ("A", "B", "C"):
        net.register(s)
    return env, net


def send(net, a, b):
    net.send(Message(
        msg_type=MsgType.VOTE, sender=a, recipient=b, txn_id="T1",
    ))


class TestLinkFailures:
    def test_severed_link_drops_messages(self):
        env, net = make_net()
        net.sever("A", "B")
        send(net, "A", "B")
        env.run()
        assert net.dropped[MsgType.VOTE] == 1
        assert len(net.inbox("B")) == 0

    def test_sever_is_bidirectional_by_default(self):
        env, net = make_net()
        net.sever("A", "B")
        assert net.is_severed("A", "B") and net.is_severed("B", "A")

    def test_unidirectional_sever(self):
        env, net = make_net()
        net.sever("A", "B", bidirectional=False)
        assert net.is_severed("A", "B")
        assert not net.is_severed("B", "A")
        send(net, "B", "A")
        env.run()
        assert net.delivered[MsgType.VOTE] == 1

    def test_heal_restores_delivery(self):
        env, net = make_net()
        net.sever("A", "B")
        net.heal("A", "B")
        send(net, "A", "B")
        env.run()
        assert net.delivered[MsgType.VOTE] == 1

    def test_partition_groups(self):
        env, net = make_net()
        net.partition(["A"], ["B", "C"])
        assert net.is_severed("A", "B") and net.is_severed("C", "A")
        send(net, "A", "C")
        env.run()
        assert net.dropped[MsgType.VOTE] == 1
        net.heal_partition(["A"], ["B", "C"])
        send(net, "A", "C")
        env.run()
        assert net.delivered[MsgType.VOTE] == 1

    def test_other_links_unaffected(self):
        env, net = make_net()
        net.sever("A", "B")
        send(net, "A", "C")
        env.run()
        assert net.delivered[MsgType.VOTE] == 1


class TestPartitionedCommit:
    def spec(self):
        return GlobalTxnSpec(txn_id="T1", subtxns=[
            SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 5})]),
            SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 5})]),
        ])

    def test_partitioned_participant_aborts_transaction(self):
        """A link failure between coordinator and one participant: the
        missing vote decides ABORT; under O2PC the reachable participant's
        exposed work is compensated once the decision gets through."""
        system = System(SystemConfig(
            scheme=CommitScheme.O2PC,
            commit=CommitConfig(vote_timeout=20.0, ack_timeout=20.0,
                                spawn_timeout=20.0),
        ))
        proc = system.submit(self.spec())

        def cut():
            # Sever after execution completes but before the vote round.
            yield system.env.timeout(4.5)
            system.network.sever("coord.T1", "S2")

        system.env.process(cut())
        outcome = system.env.run(proc)
        system.env.run()
        assert not outcome.committed
        assert system.sites["S1"].store.get("k0") == 100

    def test_healed_partition_lets_retransmission_finish(self):
        """The decision retransmission rounds deliver the outcome once the
        link heals, releasing a 2PL participant blocked in prepared state."""
        system = System(SystemConfig(
            scheme=CommitScheme.TWO_PL,
            commit=CommitConfig(ack_timeout=15.0, decision_retries=4),
        ))
        proc = system.submit(self.spec())

        def flap():
            yield system.env.timeout(6.4)   # after votes, before decision
            system.network.sever("coord.T1", "S1")
            yield system.env.timeout(30.0)
            system.network.heal("coord.T1", "S1")

        system.env.process(flap())
        outcome = system.env.run(proc)
        system.env.run()
        assert outcome.committed
        from repro.storage.wal import RecordType

        assert system.sites["S1"].wal.status_of("T1") is RecordType.COMMIT
        assert system.sites["S1"].store.get("k0") == 95
        # The participant held its lock across the whole partition window.
        hold = max(
            h.duration for h in system.sites["S1"].locks.hold_log
            if h.txn_id == "T1"
        )
        assert hold > 30.0
