"""Decision retransmission: the client half of the termination protocol.

A daemon that is down for the decision round leaves the coordinator's
retry rounds unacknowledged; the client records the logged decision in
``pending_decisions`` and :meth:`NetClient.resend_pending` re-delivers it
once the site is back.  The down-site is played by a scripted socket
server that speaks the wire protocol up to its YES vote and then goes
silent — so the pending entry is produced *organically* by
``submit()``'s bookkeeping, not planted by the test.
"""

import asyncio

import pytest

from repro.commit.base import CommitConfig, CommitScheme
from repro.net.message import Message, MsgType
from repro.rt.client import NetClient
from repro.rt.config import local_cluster
from repro.rt.daemon import SiteDaemon
from repro.rt.wire import (
    message_from_json,
    message_to_json,
    read_frame,
    write_frame,
)

from tests.rt.test_daemon import transfer_spec

#: short retransmission rounds so the failed decision phase is quick
#: (2 rounds x 10 units x 0.002 s/unit = 40 ms of wall clock)
CLIENT_COMMIT = CommitConfig(ack_timeout=10.0, decision_retries=1)


async def start_silent_site(cluster, site_id):
    """A fake daemon: executes and votes YES, never answers a DECISION."""

    async def handle(reader, writer):
        while True:
            frame = await read_frame(reader)
            if frame is None:
                break
            message = message_from_json(frame)
            reply_type = {
                MsgType.SUBTXN_REQ: MsgType.SUBTXN_ACK,
                MsgType.VOTE_REQ: MsgType.VOTE,
            }.get(message.msg_type)
            if reply_type is None:
                continue  # the silence under test
            payload = (
                {"executed": True, "transmarks": []}
                if reply_type is MsgType.SUBTXN_ACK else {"vote": "YES"}
            )
            await write_frame(writer, message_to_json(Message(
                msg_type=reply_type, sender=site_id,
                recipient=message.sender, txn_id=message.txn_id,
                payload=payload,
            )))
        writer.close()

    host, port = cluster.site(site_id).address
    return await asyncio.start_server(handle, host, port)


async def pumped(client, coro_factory):
    """Run one client coroutine with the pump alive around it."""
    pump_task = asyncio.get_running_loop().create_task(client.pump.run())
    try:
        return await coro_factory()
    finally:
        client.pump.stop()
        try:
            await pump_task
        except asyncio.CancelledError:
            pass
        await client.transport.close()


class TestPendingDecisions:
    def test_unacked_decision_is_recorded_and_resent(self, tmp_path):
        async def scenario():
            cluster = local_cluster(["S1", "S2"], data_dir=str(tmp_path))
            daemon = SiteDaemon("S1", cluster, time_scale=0.002)
            await daemon.start()
            server = await start_silent_site(cluster, "S2")
            client = NetClient(
                cluster, commit=CLIENT_COMMIT, time_scale=0.002,
            )
            try:
                outcomes = await client.run_session([transfer_spec()])
            finally:
                server.close()
                await server.wait_closed()

            # Both votes were YES, so the outcome committed — but S2
            # swallowed every DECISION round, and submit() noticed.
            assert outcomes[0].committed
            assert client.pending_decisions == {"T1": ("COMMIT", ["S2"])}

            # S2 comes back as a real daemon; the re-sent decision is
            # acknowledged and the pending entry drains.
            replacement = SiteDaemon("S2", cluster, time_scale=0.002)
            await replacement.start()
            try:
                results = await pumped(client, client.resend_session)
            finally:
                await replacement.shutdown()
                await daemon.shutdown()
            return results, client.pending_decisions

        results, pending = asyncio.run(scenario())
        assert results == {"T1": []}
        assert pending == {}

    def test_resend_keeps_the_entry_while_the_site_is_down(self, tmp_path):
        # Nobody listens on S1's port: the retransmission times out and
        # the decision stays pending for a later attempt.
        cluster = local_cluster(["S1"], data_dir=str(tmp_path))
        client = NetClient(cluster, commit=CLIENT_COMMIT, time_scale=0.002)
        client.pending_decisions["T1"] = ("COMMIT", ["S1"])
        results = client.resend_pending()
        assert results == {"T1": ["S1"]}
        assert client.pending_decisions == {"T1": ("COMMIT", ["S1"])}

    def test_acknowledged_decisions_leave_nothing_pending(self, tmp_path):
        async def scenario():
            cluster = local_cluster(["S1", "S2"], data_dir=str(tmp_path))
            daemons = [
                SiteDaemon(s, cluster, time_scale=0.002)
                for s in cluster.site_ids
            ]
            for daemon in daemons:
                await daemon.start()
            client = NetClient(
                cluster, commit=CLIENT_COMMIT, time_scale=0.002,
            )
            try:
                outcomes = await client.run_session([transfer_spec()])
            finally:
                for daemon in daemons:
                    await daemon.shutdown()
            return outcomes, client.pending_decisions

        outcomes, pending = asyncio.run(scenario())
        assert outcomes[0].committed
        assert pending == {}


class TestResendAcrossSchemes:
    @pytest.mark.parametrize(
        "scheme", [CommitScheme.TWO_PL, CommitScheme.SHORT],
    )
    def test_silent_participant_leaves_a_pending_entry(
        self, tmp_path, scheme,
    ):
        # The bookkeeping is engine-independent: any scheme whose
        # coordinator runs a decision phase records unacked sites.
        async def scenario():
            cluster = local_cluster(["S1", "S2"], data_dir=str(tmp_path))
            daemon = SiteDaemon(
                "S1", cluster, scheme=scheme, time_scale=0.002,
            )
            await daemon.start()
            server = await start_silent_site(cluster, "S2")
            client = NetClient(
                cluster, scheme=scheme, commit=CLIENT_COMMIT,
                time_scale=0.002,
            )
            try:
                await client.run_session([transfer_spec()])
            finally:
                server.close()
                await server.wait_closed()
                await daemon.shutdown()
            return client.pending_decisions

        pending = asyncio.run(scenario())
        assert pending == {"T1": ("COMMIT", ["S2"])}
