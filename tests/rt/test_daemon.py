"""In-process daemon round-trip: two SiteDaemons and a NetClient.

The same Coordinator/Participant code that runs inside ``System`` runs
here over real sockets on localhost — one event loop hosting both
daemons and the client, which keeps the test fast and deterministic
while still exercising the full wire path (frames, learned return
routes, WAL file, admin surface).
"""

import asyncio

import pytest

from repro.commit.base import CommitScheme
from repro.rt.client import NetClient
from repro.rt.config import local_cluster
from repro.rt.daemon import SiteDaemon
from repro.txn.operations import SemanticOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec, VotePolicy


def transfer_spec(txn_id="T1", amount=30, vote=VotePolicy.AUTO):
    return GlobalTxnSpec(
        txn_id=txn_id,
        subtxns=[
            SubtxnSpec("S1", [SemanticOp("withdraw", "k0",
                                         {"amount": amount})]),
            SubtxnSpec("S2", [SemanticOp("deposit", "k0",
                                         {"amount": amount})], vote=vote),
        ],
    )


async def run_cluster(tmp_path, specs, scheme=CommitScheme.O2PC):
    cluster = local_cluster(["S1", "S2"], data_dir=str(tmp_path))
    daemons = [
        SiteDaemon(site_id, cluster, scheme=scheme, time_scale=0.002)
        for site_id in cluster.site_ids
    ]
    for daemon in daemons:
        await daemon.start()
    client = NetClient(cluster, scheme=scheme, time_scale=0.002)
    try:
        outcomes = await client.run_session(specs)
        statuses = [daemon.status() for daemon in daemons]
        return outcomes, statuses
    finally:
        for daemon in daemons:
            await daemon.shutdown()


class TestDaemonRoundTrip:
    def test_transfer_commits_across_sockets(self, tmp_path):
        outcomes, statuses = asyncio.run(
            run_cluster(tmp_path, [transfer_spec()])
        )
        outcome = outcomes[0]
        assert outcome.committed
        assert outcome.compensated_sites == []
        for status in statuses:
            assert status["fresh_boot"] is True
            assert status["keys"] == 20
            # SUBTXN_REQ + VOTE_REQ + DECISION arrived; WAL holds the
            # checkpoint plus the subtransaction's records.
            assert status["wal_records"] > 1
            assert status["subtxns"]["T1"]["voted"] == "YES"

    def test_forced_no_vote_aborts_and_compensates(self, tmp_path):
        # S2 votes NO; S1 has already locally committed its withdraw
        # (O2PC), so the ABORT decision must run compensation at S1.
        outcomes, _ = asyncio.run(run_cluster(
            tmp_path, [transfer_spec(vote=VotePolicy.FORCE_NO)],
        ))
        outcome = outcomes[0]
        assert not outcome.committed
        assert outcome.no_votes == ["S2"]
        assert "S1" in outcome.compensated_sites

    def test_sequential_transactions_share_the_cluster(self, tmp_path):
        specs = [transfer_spec(txn_id=f"T{i}", amount=10) for i in range(3)]
        outcomes, statuses = asyncio.run(run_cluster(tmp_path, specs))
        assert [o.committed for o in outcomes] == [True, True, True]
        assert sorted(statuses[0]["subtxns"]) == ["T0", "T1", "T2"]

    def test_wal_survives_daemon_restart(self, tmp_path):
        async def scenario():
            cluster = local_cluster(["S1", "S2"], data_dir=str(tmp_path))

            daemons = [SiteDaemon(s, cluster, time_scale=0.002)
                       for s in cluster.site_ids]
            for daemon in daemons:
                await daemon.start()
            client = NetClient(cluster, time_scale=0.002)
            try:
                await client.run_session([transfer_spec()])
            finally:
                for daemon in daemons:
                    await daemon.shutdown()

            # Reboot S1 on the same WAL: recovery replays the committed
            # subtransaction instead of reloading pristine keys.
            rebooted = SiteDaemon("S1", cluster, time_scale=0.002)
            assert rebooted.fresh_boot is False
            await rebooted.start()
            try:
                status = rebooted.status()
            finally:
                await rebooted.shutdown()
            return status

        status = asyncio.run(scenario())
        assert status["fresh_boot"] is False
        assert status["recovered"] is not None
        assert status["recovered"]["in_doubt"] == []
        assert status["recovered"]["locally_committed"] == []
        assert status["recovered"]["redone"] >= 1
        assert status["keys"] == 20

    def test_two_pl_scheme_also_commits(self, tmp_path):
        outcomes, _ = asyncio.run(run_cluster(
            tmp_path, [transfer_spec()], scheme=CommitScheme.TWO_PL,
        ))
        assert outcomes[0].committed


class TestCompetitorSchemesOverSockets:
    """Paxos Commit and Short-Commit ride the same daemons unchanged.

    A two-daemon cluster under PAXOS is its own 2F+1 = 2 acceptor
    ensemble (one acceptor co-hosted per daemon, quorum of 2), so the
    1a/2a traffic crosses real sockets to *both* daemons.
    """

    def test_paxos_commits_over_sockets(self, tmp_path):
        outcomes, statuses = asyncio.run(run_cluster(
            tmp_path, [transfer_spec()], scheme=CommitScheme.PAXOS,
        ))
        assert outcomes[0].committed
        for status in statuses:
            assert status["subtxns"]["T1"]["voted"] == "YES"

    def test_paxos_no_vote_aborts_without_compensation(self, tmp_path):
        outcomes, _ = asyncio.run(run_cluster(
            tmp_path, [transfer_spec(vote=VotePolicy.FORCE_NO)],
            scheme=CommitScheme.PAXOS,
        ))
        outcome = outcomes[0]
        assert not outcome.committed
        assert outcome.compensated_sites == []

    def test_paxos_acceptor_state_is_persisted(self, tmp_path):
        asyncio.run(run_cluster(
            tmp_path, [transfer_spec()], scheme=CommitScheme.PAXOS,
        ))
        # Each daemon persisted its co-hosted acceptor next to its WAL.
        import json
        import os

        for acc in ("acc.1", "acc.2"):
            path = os.path.join(str(tmp_path), f"{acc}.json")
            assert os.path.exists(path), f"{acc} state file missing"
            with open(path, encoding="utf-8") as fh:
                state = json.load(fh)
            assert "T1" in state["accepted"]

    def test_short_commits_over_sockets(self, tmp_path):
        outcomes, _ = asyncio.run(run_cluster(
            tmp_path, [transfer_spec()], scheme=CommitScheme.SHORT,
        ))
        assert outcomes[0].committed

    def test_short_no_vote_aborts_without_compensation(self, tmp_path):
        outcomes, _ = asyncio.run(run_cluster(
            tmp_path, [transfer_spec(vote=VotePolicy.FORCE_NO)],
            scheme=CommitScheme.SHORT,
        ))
        outcome = outcomes[0]
        assert not outcome.committed
        assert outcome.compensated_sites == []
