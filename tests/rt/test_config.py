"""Cluster configuration: the site-list file and its validation."""

import json

import pytest

from repro.rt.config import (
    ClusterConfig,
    SiteSpec,
    cluster_from_json,
    load_cluster,
    local_cluster,
)


class TestClusterConfig:
    def test_save_load_roundtrip(self, tmp_path):
        cluster = ClusterConfig(
            sites={
                "S1": SiteSpec("S1", "127.0.0.1", 7101),
                "S2": SiteSpec("S2", "10.0.0.2", 7102),
            },
            data_dir=str(tmp_path / "data"),
        )
        path = str(tmp_path / "cluster.json")
        cluster.save(path)
        loaded = load_cluster(path)
        assert loaded == cluster

    def test_wal_path_is_per_site(self, tmp_path):
        cluster = ClusterConfig(
            sites={"S1": SiteSpec("S1", port=1)}, data_dir=str(tmp_path),
        )
        assert cluster.wal_path("S1").endswith("S1.wal")
        assert str(tmp_path) in cluster.wal_path("S1")

    def test_site_ids_sorted(self):
        cluster = ClusterConfig(sites={
            "S2": SiteSpec("S2", port=2), "S1": SiteSpec("S1", port=1),
        })
        assert cluster.site_ids == ["S1", "S2"]

    def test_unknown_site_names_the_known_ones(self):
        cluster = ClusterConfig(sites={"S1": SiteSpec("S1", port=1)})
        with pytest.raises(KeyError, match="S1"):
            cluster.site("S9")

    def test_missing_sites_rejected(self):
        with pytest.raises(ValueError, match="sites"):
            cluster_from_json({"data_dir": "."})
        with pytest.raises(ValueError, match="sites"):
            cluster_from_json({"sites": {}})

    def test_site_without_port_rejected(self):
        with pytest.raises(ValueError, match="port"):
            cluster_from_json({"sites": {"S1": {"host": "x"}}})

    def test_host_defaults_to_localhost(self):
        cluster = cluster_from_json({"sites": {"S1": {"port": 7101}}})
        assert cluster.site("S1").host == "127.0.0.1"

    def test_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="object"):
            load_cluster(str(path))

    def test_local_cluster_assigns_distinct_free_ports(self, tmp_path):
        cluster = local_cluster(["S1", "S2", "S3"], data_dir=str(tmp_path))
        ports = {spec.port for spec in cluster.sites.values()}
        assert len(ports) == 3
        assert all(port > 0 for port in ports)
