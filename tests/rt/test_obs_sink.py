"""Per-site JSONL event sinks and the cluster-wide aggregation fold.

The sink is the daemon half of live observability (``repro serve
--obs``); :func:`aggregate_cluster` is the collector half (``repro
metrics --backend net``).  The contract worth pinning: events round-trip
through JSONL losslessly (including tuple fields and bus stamps), sinks
append across restarts, and the aggregator derives commit/abort counts
from ``subtxn.decision`` events — one global decision per transaction,
however many sites applied it.
"""

import json

from repro.obs.events import (
    DecisionApplied,
    EventBus,
    LockGranted,
    LockReleased,
    SiteRecovered,
    TxnTerminated,
)
from repro.obs.export import event_from_dict, event_to_dict
from repro.rt.config import ClusterConfig, SiteSpec
from repro.rt.obs_sink import JsonlEventSink, aggregate_cluster, read_events


def stamped(bus, event):
    return bus.publish(event)


def make_bus():
    bus = EventBus()
    bus.enable()
    return bus


class TestRoundTrip:
    def test_tuple_fields_and_stamps_survive(self):
        bus = make_bus()
        event = stamped(bus, SiteRecovered(
            site_id="S1", in_doubt=("T1", "T2"), locally_committed=("T3",),
        ))
        back = event_from_dict(event_to_dict(event))
        assert back == event
        assert back.in_doubt == ("T1", "T2")
        assert back.ts == event.ts
        assert back.seq == event.seq

    def test_every_published_kind_reconstructs(self):
        bus = make_bus()
        events = [
            stamped(bus, DecisionApplied(
                txn_id="T1", site_id="S1", decision="COMMIT",
                compensated=False,
            )),
            stamped(bus, TxnTerminated(
                txn_id="T1", committed=True, latency=3.5,
                compensated_sites=(),
            )),
            stamped(bus, LockGranted(
                site_id="S1", txn_id="T1", key="k0", mode="X",
                waited=0.0,
            )),
        ]
        for event in events:
            assert event_from_dict(event_to_dict(event)) == event


class TestSink:
    def test_sink_writes_readable_jsonl(self, tmp_path):
        path = str(tmp_path / "S1.events.jsonl")
        bus = make_bus()
        sink = JsonlEventSink(path, flush_every=2)
        bus.subscribe(sink)
        stamped(bus, DecisionApplied(
            txn_id="T1", site_id="S1", decision="COMMIT", compensated=False,
        ))
        stamped(bus, DecisionApplied(
            txn_id="T2", site_id="S1", decision="ABORT", compensated=True,
        ))
        sink.close()
        events = read_events(path)
        assert [e.txn_id for e in events] == ["T1", "T2"]
        assert sink.events_written == 2

    def test_sink_appends_across_restarts(self, tmp_path):
        path = str(tmp_path / "S1.events.jsonl")
        for txn in ("T1", "T2"):
            bus = make_bus()
            sink = JsonlEventSink(path)
            bus.subscribe(sink)
            stamped(bus, DecisionApplied(
                txn_id=txn, site_id="S1", decision="COMMIT",
                compensated=False,
            ))
            sink.close()
        assert [e.txn_id for e in read_events(path)] == ["T1", "T2"]

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = str(tmp_path / "S1.events.jsonl")
        bus = make_bus()
        sink = JsonlEventSink(path)
        bus.subscribe(sink)
        stamped(bus, DecisionApplied(
            txn_id="T1", site_id="S1", decision="COMMIT", compensated=False,
        ))
        sink.close()
        with open(path, encoding="utf-8") as handle:
            line = handle.readline().rstrip("\n")
        parsed = json.loads(line)
        assert line == json.dumps(
            parsed, sort_keys=True, separators=(",", ":"),
        )


class TestAggregateCluster:
    def cluster(self, tmp_path, sites=("S1", "S2")):
        return ClusterConfig(
            sites={s: SiteSpec(site_id=s, port=1) for s in sites},
            data_dir=str(tmp_path),
        )

    def write_stream(self, cluster, site_id, events):
        bus = make_bus()
        sink = JsonlEventSink(cluster.events_path(site_id))
        bus.subscribe(sink)
        for event in events:
            stamped(bus, event)
        sink.close()

    def test_decisions_count_once_per_transaction(self, tmp_path):
        cluster = self.cluster(tmp_path)
        # Both sites apply T1's COMMIT; only S1 records T2's ABORT.
        self.write_stream(cluster, "S1", [
            DecisionApplied(txn_id="T1", site_id="S1", decision="COMMIT",
                            compensated=False),
            DecisionApplied(txn_id="T2", site_id="S1", decision="ABORT",
                            compensated=True),
        ])
        self.write_stream(cluster, "S2", [
            DecisionApplied(txn_id="T1", site_id="S2", decision="COMMIT",
                            compensated=False),
        ])
        report, per_site = aggregate_cluster(cluster)
        assert report.committed == 1
        assert report.aborted == 1
        assert per_site == {"S1": 2, "S2": 1}

    def test_missing_streams_count_zero(self, tmp_path):
        cluster = self.cluster(tmp_path)
        report, per_site = aggregate_cluster(cluster)
        assert per_site == {"S1": 0, "S2": 0}
        assert report.committed == 0

    def test_lock_events_feed_the_metrics_fold(self, tmp_path):
        cluster = self.cluster(tmp_path, sites=("S1",))
        self.write_stream(cluster, "S1", [
            LockGranted(site_id="S1", txn_id="T1", key="k0", mode="X",
                        waited=0.5),
            LockReleased(site_id="S1", txn_id="T1", key="k0", mode="X",
                         held=2.0),
        ])
        report, _ = aggregate_cluster(cluster)
        assert report.mean_lock_hold == 2.0
        assert report.mean_lock_wait == 0.5
