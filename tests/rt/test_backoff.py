"""Redial backoff: the schedule, the per-peer gate, and the transport wiring.

The schedule is a pure function (deterministic given an RNG), the policy
is clock-free (callers pass ``now``), and the transport consults the
policy before every connect — so a burst of sends at a dead site costs
one dial attempt, not one per message.
"""

import asyncio
import random

import pytest

from repro.net.message import Message, MsgType
from repro.rt.backoff import RedialPolicy, backoff_delay
from repro.rt.config import local_cluster
from repro.rt.pump import RealtimePump
from repro.rt.transport import TcpTransport
from repro.sim.engine import Environment


class TestBackoffDelay:
    def test_undithered_schedule_doubles_until_the_cap(self):
        delays = [
            backoff_delay(a, base=0.05, cap=2.0, jitter=0.0)
            for a in range(8)
        ]
        assert delays[:6] == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[6] == 2.0
        assert delays[7] == 2.0  # capped, not 6.4

    def test_jitter_stays_within_its_band(self):
        rng = random.Random(7)
        for attempt in range(10):
            delay = backoff_delay(
                attempt, base=0.05, cap=2.0, jitter=0.25, rng=rng,
            )
            nominal = min(2.0, 0.05 * 2 ** attempt)
            assert 0.75 * nominal <= delay <= 1.25 * nominal

    def test_same_rng_seed_gives_the_same_schedule(self):
        a = [
            backoff_delay(i, rng=random.Random(3)) for i in range(5)
        ]
        b = [
            backoff_delay(i, rng=random.Random(3)) for i in range(5)
        ]
        assert a == b

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1)


class TestRedialPolicy:
    def test_windows_widen_per_failure(self):
        policy = RedialPolicy("t", base=0.05, cap=2.0, jitter=0.0)
        now = 100.0
        d1 = policy.record_failure("S1", now)
        d2 = policy.record_failure("S1", now)
        d3 = policy.record_failure("S1", now)
        assert (d1, d2, d3) == (0.05, 0.1, 0.2)

    def test_gate_opens_exactly_at_the_deadline(self):
        policy = RedialPolicy("t", jitter=0.0)
        delay = policy.record_failure("S1", 10.0)
        assert not policy.may_dial("S1", 10.0)
        assert not policy.may_dial("S1", 10.0 + delay / 2)
        assert policy.may_dial("S1", 10.0 + delay)

    def test_success_resets_the_peer(self):
        policy = RedialPolicy("t", jitter=0.0)
        policy.record_failure("S1", 0.0)
        policy.record_failure("S1", 0.0)
        policy.record_success("S1")
        assert policy.may_dial("S1", 0.0)
        # and the attempt counter restarted from the base delay
        assert policy.record_failure("S1", 0.0) == policy.base

    def test_peers_are_independent(self):
        policy = RedialPolicy("t", jitter=0.0)
        policy.record_failure("S1", 0.0)
        assert policy.may_dial("S2", 0.0)


class TestTransportUsesThePolicy:
    def test_burst_at_dead_site_costs_one_dial(self):
        # Nobody listens on the cluster's port: the first send dials and
        # fails; the rest of the burst lands inside the backoff window
        # and is dropped without another connect syscall.
        async def scenario():
            cluster = local_cluster(["S1"], data_dir=".")
            env = Environment()
            transport = TcpTransport(env, cluster, RealtimePump(env))
            transport.register("A")
            try:
                for i in range(5):
                    transport.send(Message(
                        msg_type=MsgType.SUBTXN_REQ, sender="A",
                        recipient="S1", txn_id=f"T{i}", payload={},
                    ))
                    await asyncio.sleep(0.01)
                assert transport.dials == 1
                assert transport.dropped[MsgType.SUBTXN_REQ] == 5
            finally:
                await transport.close()

        asyncio.run(scenario())
