"""Wire codec: messages, operations, and framing round-trip exactly.

The daemon must rebuild byte-identical protocol state from a frame: the
typed payload values (operation lists, vote policies) have to survive
JSON, and the framing has to reject garbage without reading past a frame
boundary.
"""

import pytest

from repro.net.message import Message, MsgType
from repro.rt.wire import (
    MAX_FRAME,
    WireError,
    decode_frame,
    encode_batch,
    encode_frame,
    message_from_json,
    message_to_json,
    op_from_json,
    op_to_json,
    unbatch,
)
from repro.txn.operations import ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import VotePolicy


class TestOperations:
    @pytest.mark.parametrize("op", [
        ReadOp("k0"),
        WriteOp("k1", 42),
        WriteOp("k1", {"nested": [1, 2]}),
        SemanticOp("withdraw", "k2", {"amount": 30}),
        SemanticOp("set", "k3", {"value": "dirty"}),
    ])
    def test_roundtrip(self, op):
        assert op_from_json(op_to_json(op)) == op

    def test_unknown_tag_raises(self):
        with pytest.raises(WireError):
            op_from_json({"op": "compare-and-swap", "key": "k0"})


class TestMessages:
    def test_subtxn_req_payload_roundtrips(self):
        message = Message(
            msg_type=MsgType.SUBTXN_REQ, sender="coord.T1",
            recipient="S1", txn_id="T1",
            payload={
                "ops": [ReadOp("k0"), SemanticOp("withdraw", "k1",
                                                 {"amount": 5})],
                "vote": VotePolicy.FORCE_NO,
                "real_action": True,
                "transmarks": ["S2"],
            },
        )
        rebuilt = message_from_json(message_to_json(message))
        assert rebuilt.msg_type is MsgType.SUBTXN_REQ
        assert rebuilt.sender == "coord.T1"
        assert rebuilt.recipient == "S1"
        assert rebuilt.txn_id == "T1"
        assert rebuilt.payload["ops"] == message.payload["ops"]
        assert rebuilt.payload["vote"] is VotePolicy.FORCE_NO
        assert rebuilt.payload["real_action"] is True
        assert rebuilt.payload["transmarks"] == ["S2"]

    @pytest.mark.parametrize("msg_type", list(MsgType))
    def test_every_msg_type_roundtrips(self, msg_type):
        message = Message(
            msg_type=msg_type, sender="a", recipient="b", txn_id="T",
            payload={},
        )
        assert message_from_json(message_to_json(message)).msg_type is msg_type

    def test_malformed_frame_raises_wire_error(self):
        with pytest.raises(WireError):
            message_from_json({"kind": "msg", "type": "NOT_A_TYPE",
                               "sender": "a", "recipient": "b", "txn": "T"})


class TestFraming:
    def test_encode_decode_roundtrip(self):
        body = {"kind": "admin", "cmd": "status"}
        frame = encode_frame(body)
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == body

    def test_deterministic_encoding(self):
        body = {"kind": "msg", "b": 1, "a": 2}
        assert encode_frame(body) == encode_frame(
            {"a": 2, "b": 1, "kind": "msg"}
        )

    def test_oversized_frame_refused(self):
        with pytest.raises(WireError):
            encode_frame({"kind": "msg", "blob": "x" * (MAX_FRAME + 1)})

    def test_untagged_body_refused(self):
        with pytest.raises(WireError):
            decode_frame(b'{"no": "kind"}')

    def test_non_json_refused(self):
        with pytest.raises(WireError):
            decode_frame(b"\x00\x01garbage")


class TestBatching:
    def body(self, n):
        return {"kind": "msg", "type": "VOTE", "sender": f"S{n}",
                "recipient": "coord.T1", "txn": "T1",
                "payload": {"vote": "YES"}}

    def test_one_body_stays_a_plain_singleton_frame(self):
        # Legacy peers (and the scripted fake daemons in the test suite)
        # parse each frame with message_from_json directly, so a lone
        # message must never grow a batch envelope.
        frames = encode_batch([self.body(1)])
        assert len(frames) == 1
        length = int.from_bytes(frames[0][:4], "big")
        assert decode_frame(frames[0][4:]) == self.body(1)
        assert length == len(frames[0]) - 4

    def test_many_bodies_share_one_envelope(self):
        bodies = [self.body(n) for n in range(5)]
        frames = encode_batch(bodies)
        assert len(frames) == 1
        envelope = decode_frame(frames[0][4:])
        assert envelope["kind"] == "batch"
        assert unbatch(envelope) == bodies

    def test_unbatch_of_a_singleton_is_identity(self):
        assert unbatch(self.body(1)) == [self.body(1)]

    def test_roundtrip_preserves_order(self):
        bodies = [self.body(n) for n in range(9)]
        out = []
        for frame in encode_batch(bodies):
            out.extend(unbatch(decode_frame(frame[4:])))
        assert out == bodies

    def test_oversized_batches_split_across_frames(self):
        big = [{"kind": "msg", "blob": "x" * (MAX_FRAME // 3)}
               for _ in range(4)]
        frames = encode_batch(big)
        assert len(frames) > 1
        out = []
        for frame in frames:
            out.extend(unbatch(decode_frame(frame[4:])))
        assert out == big

    def test_nested_batch_refused(self):
        with pytest.raises(WireError):
            unbatch({"kind": "batch",
                     "frames": [{"kind": "batch", "frames": []}]})

    def test_untagged_member_refused(self):
        with pytest.raises(WireError):
            unbatch({"kind": "batch", "frames": [{"no": "kind"}]})

    def test_missing_frames_list_refused(self):
        with pytest.raises(WireError):
            unbatch({"kind": "batch", "frames": "nope"})
