"""Pipelined coordinator sessions over real sockets.

``NetClient.run_pipelined`` multiplexes a bounded window of unmodified
Coordinator engines on one pump and one set of per-site connections.
The contracts pinned here: pipelining changes *scheduling only* — every
transaction commits with the same per-transaction protocol trace a
serial run produces; money is conserved under concurrent cross-site
transfers; and the daemon-side cost model actually changes (one fsync
covers many force points once transactions overlap).
"""

import asyncio

from repro.obs.events import EventLog, VoteRecorded
from repro.rt.client import NetClient
from repro.rt.config import local_cluster
from repro.rt.daemon import SiteDaemon
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec

N_SITES = 3
KEYS = 5
INITIAL = 100


def transfer_specs(site_ids, n):
    """Deterministic cross-site transfers contending on a few hot keys."""
    specs = []
    for i in range(n):
        src = site_ids[i % len(site_ids)]
        dst = site_ids[(i + 1) % len(site_ids)]
        key = f"k{i % KEYS}"
        specs.append(GlobalTxnSpec(txn_id=f"P{i}", subtxns=[
            SubtxnSpec(src, [SemanticOp("withdraw", key, {"amount": 2})]),
            SubtxnSpec(dst, [SemanticOp("deposit", key, {"amount": 2})]),
        ]))
    return specs


async def run_cluster(tmp_path, specs, sessions):
    """In-process daemons + one client on a single event loop."""
    cluster = local_cluster(
        [f"S{i}" for i in range(1, N_SITES + 1)], data_dir=str(tmp_path),
    )
    daemons = [
        SiteDaemon(site_id, cluster, time_scale=0.002, keys_per_site=KEYS)
        for site_id in cluster.site_ids
    ]
    for daemon in daemons:
        await daemon.start()
    client = NetClient(cluster, time_scale=0.002)
    log = EventLog()
    client.env.bus.subscribe(log)
    client.env.bus.enable()
    try:
        if sessions == 1:
            outcomes = await client.run_session(specs)
        else:
            outcomes = await client.run_pipelined(specs, sessions=sessions)
        wal_stats = {
            d.site_id: (d.site.wal.forced_writes, d.site.wal.fsyncs)
            for d in daemons
        }
        balances = {
            d.site_id: sum(d.site.store.snapshot().values())
            for d in daemons
        }
        groups = sum(d.flusher.groups for d in daemons)
        covered = sum(d.flusher.forces_covered for d in daemons)
        return outcomes, client, log.events, wal_stats, balances, (
            groups, covered,
        )
    finally:
        for daemon in daemons:
            await daemon.shutdown()


def txn_trace(events, txn_id):
    """One transaction's protocol trace, normalized for vote-arrival order.

    Votes from different sites race over independent sockets in *any*
    run, serial included, so the vote set is compared unordered; every
    other client-side event keeps its sequence.
    """
    phases = [
        e.kind for e in events
        if getattr(e, "txn_id", None) == txn_id
        and not isinstance(e, VoteRecorded)
    ]
    votes = sorted(
        (e.site_id, e.vote) for e in events
        if isinstance(e, VoteRecorded) and e.txn_id == txn_id
    )
    return phases, votes


class TestPipelinedSessions:
    def test_pipelined_transfers_commit_and_conserve_balance(self, tmp_path):
        specs = transfer_specs([f"S{i}" for i in range(1, N_SITES + 1)], 30)
        outcomes, client, _, _, balances, _ = asyncio.run(
            run_cluster(tmp_path, specs, sessions=8)
        )
        assert len(outcomes) == 30
        assert all(o.committed for o in outcomes)
        # transfers only move value between sites: the cluster-wide sum
        # is exactly the preloaded total
        assert sum(balances.values()) == N_SITES * KEYS * INITIAL
        assert client.pending_decisions == {}

    def test_outcomes_return_in_spec_order(self, tmp_path):
        specs = transfer_specs([f"S{i}" for i in range(1, N_SITES + 1)], 12)
        outcomes, client, _, _, _, _ = asyncio.run(
            run_cluster(tmp_path, specs, sessions=6)
        )
        assert [o.txn_id for o in outcomes] == [s.txn_id for s in specs]
        assert len(client.latencies) == 12

    def test_window_bounds_concurrency(self, tmp_path):
        # sessions=1 through the pipelined path degenerates to serial —
        # same outcomes, no interleaving to go wrong.
        specs = transfer_specs([f"S{i}" for i in range(1, N_SITES + 1)], 6)
        outcomes, _, _, _, _, _ = asyncio.run(
            run_cluster(tmp_path, specs, sessions=1)
        )
        assert all(o.committed for o in outcomes)

    def test_group_commit_coalesces_fsyncs_under_pipelining(self, tmp_path):
        specs = transfer_specs([f"S{i}" for i in range(1, N_SITES + 1)], 30)
        _, _, _, wal_stats, _, (groups, covered) = asyncio.run(
            run_cluster(tmp_path, specs, sessions=8)
        )
        forced = sum(f for f, _ in wal_stats.values())
        fsyncs = sum(s for _, s in wal_stats.values())
        # every force point was covered by *some* fsync, but concurrent
        # sessions share them: strictly fewer fsyncs than force points
        assert forced > 0
        assert fsyncs < forced
        assert groups > 0
        assert covered >= groups

    def test_pipelined_traces_match_serial_traces(self, tmp_path):
        site_ids = [f"S{i}" for i in range(1, N_SITES + 1)]
        specs = transfer_specs(site_ids, 16)
        _, _, serial_events, _, _, _ = asyncio.run(
            run_cluster(tmp_path / "serial", specs, sessions=1)
        )
        _, _, piped_events, _, _, _ = asyncio.run(
            run_cluster(tmp_path / "piped", specs, sessions=8)
        )
        for spec in specs:
            serial_trace = txn_trace(serial_events, spec.txn_id)
            piped_trace = txn_trace(piped_events, spec.txn_id)
            assert piped_trace == serial_trace, spec.txn_id
            # and the trace is the full happy path, not a vacuous match
            phases, votes = serial_trace
            assert "txn.submit" in phases
            assert "txn.end" in phases
            assert len(votes) == 2
