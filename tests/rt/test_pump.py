"""RealtimePump: the discrete-event kernel against the asyncio clock.

The pump's contract is that generator protocol code cannot tell it is
not inside ``env.run()``: timeouts fire in order, externally injected
events (a socket frame landing in an inbox) run at the current instant
after a kick, and ``wait_for`` mirrors ``env.run(until=event)``.
"""

import asyncio

import pytest

from repro.rt.pump import RealtimePump
from repro.sim.engine import Environment
from repro.sim.store import Store


def run(coro):
    return asyncio.run(coro)


class TestPump:
    def test_time_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            RealtimePump(Environment(), time_scale=0)

    def test_timeouts_fire_in_simulation_order(self):
        async def scenario():
            env = Environment()
            pump = RealtimePump(env, time_scale=0.001)
            fired = []

            def proc(delay, tag):
                yield env.timeout(delay)
                fired.append((tag, env.now))

            env.process(proc(3, "late"))
            env.process(proc(1, "early"))
            task = asyncio.ensure_future(pump.run())
            await asyncio.sleep(0.1)
            pump.stop()
            await task
            return fired

        assert run(scenario()) == [("early", 1), ("late", 3)]

    def test_external_put_wakes_a_waiting_process(self):
        async def scenario():
            env = Environment()
            pump = RealtimePump(env, time_scale=0.001)
            store = Store(env)
            got = []

            def consumer():
                item = yield store.get()
                got.append(item)

            env.process(consumer())
            task = asyncio.ensure_future(pump.run())
            await asyncio.sleep(0.02)
            # Nothing scheduled: the pump is parked on its kick event.
            store.put("frame")
            pump.kick()
            await asyncio.sleep(0.05)
            pump.stop()
            await task
            return got

        assert run(scenario()) == ["frame"]

    def test_wait_for_returns_process_value(self):
        async def scenario():
            env = Environment()
            pump = RealtimePump(env, time_scale=0.001)

            def worker():
                yield env.timeout(2)
                return "done"

            proc = env.process(worker())
            task = asyncio.ensure_future(pump.run())
            value = await pump.wait_for(proc)
            pump.stop()
            await task
            return value

        assert run(scenario()) == "done"

    def test_wait_for_raises_process_failure(self):
        async def scenario():
            env = Environment()
            pump = RealtimePump(env, time_scale=0.001)

            def worker():
                yield env.timeout(1)
                raise RuntimeError("boom")

            proc = env.process(worker())
            task = asyncio.ensure_future(pump.run())
            try:
                with pytest.raises(RuntimeError, match="boom"):
                    await pump.wait_for(proc)
            finally:
                pump.stop()
                await task

        run(scenario())

    def test_wait_for_already_processed_event(self):
        async def scenario():
            env = Environment()
            pump = RealtimePump(env, time_scale=0.001)

            def worker():
                yield env.timeout(1)
                return 41

            proc = env.process(worker())
            env.run()  # process completes before the pump even starts
            return await pump.wait_for(proc)

        assert run(scenario()) == 41

    def test_clock_advances_with_wall_time(self):
        async def scenario():
            env = Environment()
            pump = RealtimePump(env, time_scale=0.005)

            def worker():
                yield env.timeout(10)

            proc = env.process(worker())
            task = asyncio.ensure_future(pump.run())
            loop = asyncio.get_running_loop()
            before = loop.time()
            await pump.wait_for(proc)
            elapsed = loop.time() - before
            pump.stop()
            await task
            return env.now, elapsed

        now, elapsed = run(scenario())
        assert now == 10
        # 10 units * 5 ms/unit: the wall clock genuinely moved.
        assert elapsed >= 0.04
