"""Unit and integration tests for the workload generator."""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import VotePolicy
from repro.workload import WorkloadConfig, WorkloadGenerator


def make(config=None, sys_config=None, seed=1):
    system = System(sys_config or SystemConfig(n_sites=4))
    return system, WorkloadGenerator(system, config, seed=seed)


class TestSpecGeneration:
    def test_deterministic_given_seed(self):
        _, g1 = make(seed=5)
        _, g2 = make(seed=5)
        assert [s.site_ids for s in g1.specs()] == [
            s.site_ids for s in g2.specs()
        ]

    def test_site_count_within_bounds(self):
        _, gen = make(WorkloadConfig(min_sites=2, max_sites=3))
        for spec in gen.specs():
            assert 2 <= len(spec.site_ids) <= 3
            assert len(set(spec.site_ids)) == len(spec.site_ids)

    def test_ops_count_within_bounds(self):
        _, gen = make(WorkloadConfig(min_ops=2, max_ops=4))
        for spec in gen.specs():
            for sub in spec.subtxns:
                assert 2 <= len(sub.ops) <= 4

    def test_read_fraction_extremes(self):
        _, gen = make(WorkloadConfig(read_fraction=1.0))
        assert all(
            isinstance(op, ReadOp)
            for spec in gen.specs() for sub in spec.subtxns for op in sub.ops
        )
        _, gen = make(WorkloadConfig(read_fraction=0.0, semantic_fraction=1.0))
        assert all(
            isinstance(op, SemanticOp)
            for spec in gen.specs() for sub in spec.subtxns for op in sub.ops
        )

    def test_generic_model_selection(self):
        _, gen = make(WorkloadConfig(read_fraction=0.0, semantic_fraction=0.0))
        assert all(
            isinstance(op, WriteOp)
            for spec in gen.specs() for sub in spec.subtxns for op in sub.ops
        )

    def test_abort_probability_injects_force_no(self):
        _, gen = make(WorkloadConfig(n_transactions=100, abort_probability=0.5))
        forced = sum(
            1 for spec in gen.specs()
            if any(s.vote is VotePolicy.FORCE_NO for s in spec.subtxns)
        )
        assert 25 < forced < 75

    def test_zero_abort_probability_injects_none(self):
        _, gen = make(WorkloadConfig(n_transactions=50, abort_probability=0.0))
        assert not any(
            s.vote is VotePolicy.FORCE_NO
            for spec in gen.specs() for s in spec.subtxns
        )


class TestDriving:
    def test_run_completes_all_transactions(self):
        system, gen = make(WorkloadConfig(n_transactions=20))
        gen.run()
        assert len(system.outcomes) == 20
        assert all(o.committed for o in system.outcomes)
        system.check_correctness()

    def test_run_with_aborts_compensates_and_stays_correct(self):
        system, gen = make(
            WorkloadConfig(n_transactions=30, abort_probability=0.3),
            SystemConfig(n_sites=4, protocol="P1"),
        )
        gen.run()
        report = system.metrics()
        assert report.aborted > 0
        assert report.compensations > 0
        system.check_correctness()

    def test_locals_interleaved(self):
        system, gen = make(
            WorkloadConfig(n_transactions=10, locals_per_global=2.0),
        )
        gen.run()
        local_commits = sum(
            1 for site in system.sites.values()
            for txn in site.history.committed if txn.startswith("L")
        )
        assert local_commits > 0

    def test_metrics_report_sane(self):
        system, gen = make(WorkloadConfig(n_transactions=15))
        elapsed = gen.run()
        report = system.metrics(elapsed=elapsed)
        # A contended workload may lose a few transactions to cross-site
        # deadlocks (resolved by coordinator timeout), never silently.
        assert report.committed + report.aborted == 15
        assert report.committed >= 12
        assert report.throughput > 0
        assert report.mean_latency > 0
        assert report.messages_per_txn >= 8  # 2 sites x 4 round-trips min
        system.check_correctness()


class TestScenarios:
    def test_banking_conserves_money(self):
        from repro.workload import banking_transfers

        system = System(SystemConfig(n_sites=3, scheme=CommitScheme.O2PC))
        total_before = sum(
            sum(v for v in site.store.snapshot().values())
            for site in system.sites.values()
        )
        for spec in banking_transfers(sorted(system.sites), n_transfers=15):
            system.submit(spec)
        system.env.run()
        assert all(o.committed for o in system.outcomes)
        total_after = sum(
            sum(v for v in site.store.snapshot().values())
            for site in system.sites.values()
        )
        assert total_after == total_before
        system.check_correctness()

    def test_banking_conserves_money_even_with_aborts(self):
        """Semantic atomicity: an aborted transfer nets to zero because the
        compensation reverses the locally-committed leg."""
        from repro.workload import banking_transfers

        system = System(SystemConfig(
            n_sites=3, scheme=CommitScheme.O2PC, protocol="P1",
        ))
        total_before = sum(
            sum(site.store.snapshot().values())
            for site in system.sites.values()
        )
        for spec in banking_transfers(
            sorted(system.sites), n_transfers=25, abort_probability=0.4,
        ):
            system.submit(spec)
        system.env.run()
        assert any(not o.committed for o in system.outcomes)
        total_after = sum(
            sum(site.store.snapshot().values())
            for site in system.sites.values()
        )
        assert total_after == total_before
        system.check_correctness()

    def test_reservations_run_correctly(self):
        from repro.workload import travel_reservations

        system = System(SystemConfig(
            n_sites=4, scheme=CommitScheme.O2PC, protocol="P1",
        ))
        for spec in travel_reservations(sorted(system.sites), n_trips=20):
            system.submit(spec)
        system.env.run()
        assert system.outcomes
        system.check_correctness()

    def test_inventory_runs_correctly(self):
        from repro.workload import inventory_orders

        system = System(SystemConfig(
            n_sites=4, scheme=CommitScheme.O2PC, protocol="P1",
        ))
        for spec in inventory_orders(sorted(system.sites), n_orders=20):
            system.submit(spec)
        system.env.run()
        assert system.outcomes
        system.check_correctness()
