#!/usr/bin/env python
"""Profile the simulator hot path (cProfile + optional tracemalloc).

Runs the pinned ``bench_throughput`` workload (or ``bench_scale`` with
``--scale``) under cProfile and prints the top functions by cumulative
and internal time — the table the before/after sections of
``docs/PERFORMANCE.md`` are built from.  ``--memory`` additionally runs
the workload once under tracemalloc and prints the top allocation sites,
which is how the allocation-free locking and ``__slots__`` work was
targeted.

The profiled throughput number is *not* comparable to ``repro bench``
output: cProfile's tracing overhead roughly triples the wall time.
Always quote clean ``repro bench`` numbers; use this tool only to rank
where the time and allocations go.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py [--scale | --net]
        [--transactions N] [--memory] [--top N] [--out FILE]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys


def _run_workload(args: argparse.Namespace) -> None:
    from repro.harness.bench import bench_net, bench_scale, bench_throughput

    if args.net:
        # The daemons are separate processes; the profile covers the
        # client side — pump wakeups, transport flushes, frame codec —
        # which is exactly the pipelined hot loop.
        bench_net(
            serial_transactions=10,
            pipelined_transactions=args.transactions,
        )
    elif args.scale:
        bench_scale(
            sites=args.sites, transactions=args.transactions, repeats=1,
        )
    else:
        bench_throughput(transactions=args.transactions, repeats=1)


def _warmup(args: argparse.Namespace) -> None:
    """Import and touch everything once so the profile shows the hot
    path, not module import and dataclass machinery."""
    from repro.harness.bench import bench_net, bench_throughput

    if args.net:
        bench_net(serial_transactions=2, pipelined_transactions=4)
    else:
        bench_throughput(transactions=2, repeats=1)


def profile_time(args: argparse.Namespace) -> str:
    _warmup(args)
    profiler = cProfile.Profile()
    profiler.enable()
    _run_workload(args)
    profiler.disable()

    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs()
    for sort in ("cumulative", "tottime"):
        out.write(f"\n== top {args.top} by {sort} ==\n")
        stats.sort_stats(sort).print_stats(args.top)
    return out.getvalue()


def profile_memory(args: argparse.Namespace) -> str:
    import tracemalloc

    tracemalloc.start(25)
    _run_workload(args)
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()

    lines = [f"\n== top {args.top} allocation sites ==\n"]
    for stat in snapshot.statistics("lineno")[:args.top]:
        lines.append(f"{stat}\n")
    return "".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", action="store_true",
                        help="profile bench_scale instead of "
                             "bench_throughput")
    parser.add_argument("--net", action="store_true",
                        help="profile the networked bench's client loop "
                             "(daemons run unprofiled in their own "
                             "processes)")
    parser.add_argument("--sites", type=int, default=64,
                        help="sites for --scale (default 64)")
    parser.add_argument("--transactions", type=int, default=100,
                        help="transactions per run (default 100)")
    parser.add_argument("--memory", action="store_true",
                        help="also profile allocations with tracemalloc")
    parser.add_argument("--top", type=int, default=20,
                        help="rows per table (default 20)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    report = profile_time(args)
    if args.memory:
        report += profile_memory(args)

    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
