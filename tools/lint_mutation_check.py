#!/usr/bin/env python
"""Self-test for ``repro lint``: seeded mutations must be caught.

A linter that never fires is indistinguishable from a working one, so CI
runs this script after the clean lint pass: it copies ``src/`` to a temp
directory, applies one protocol-breaking mutation at a time, and asserts
the lint exits 1 with the expected rule.  The unmutated copy must stay
clean (exit 0) to prove the harness itself isn't producing the findings.

Run from the repo root: ``python tools/lint_mutation_check.py``
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


@dataclass(frozen=True)
class Mutation:
    """One seeded defect: edit ``paths`` and expect ``expect_rule`` to fire."""

    name: str
    paths: tuple[str, ...]  # relative to the copied src/ tree
    replacements: tuple[tuple[str, str], ...]  # (old, new); "" new = delete
    append: str  # text appended to each file (for injections)
    expect_rule: str


MUTATIONS = [
    Mutation(
        name="delete-deposit-inverse",
        paths=("repro/compensation/actions.py",),
        replacements=(
            (
                'inverse=lambda params, before: '
                '("withdraw", {"amount": params["amount"]}),',
                "inverse=None,",
            ),
            ('inverse_name="withdraw",', "inverse_name=None,"),
        ),
        append="",
        # deposit silently becomes a real action: every workload deposit in
        # a non-lock-holding subtransaction loses its counter-task
        expect_rule="repertoire/real-action-unlocked",
    ),
    Mutation(
        name="inject-wall-clock",
        paths=("repro/commit/base.py",),
        replacements=(),
        append="\nimport time\n_LINT_CANARY = time.time()\n",
        expect_rule="determinism/wall-clock",
    ),
    Mutation(
        name="drop-decision-handler",
        # the receivable set is the UNION of every participant-side
        # engine's _HANDLERS, so the decision handler must vanish from
        # all of them before MsgType.DECISION becomes unreceivable
        paths=(
            "repro/commit/participant.py",
            "repro/protocols/paxos.py",
            "repro/protocols/short.py",
        ),
        replacements=((
            'MsgType.DECISION: "_handle_decision",\n', "",
        ),),
        append="",
        expect_rule="dispatch/missing-handler",
    ),
    Mutation(
        name="move-force-after-send",
        # swap the 2PL prepare force point to AFTER the YES vote leaves
        # the site: the O2PC branch still forces via local_commit, so
        # the AND-merge over the if-arms leaves the send uncovered
        paths=("repro/commit/participant.py",),
        replacements=(
            ("            self.site.ltm.prepare(txn_id)\n", ""),
            (
                '        self._reply(msg, MsgType.VOTE, {"vote": "YES"})\n',
                '        self._reply(msg, MsgType.VOTE, {"vote": "YES"})\n'
                "        self.site.ltm.prepare(txn_id)\n",
            ),
        ),
        append="",
        expect_rule="flow/unforced-send",
    ),
    Mutation(
        name="drop-paxos-decision-handler",
        # delete the DECISION handler from the Paxos participant ONLY:
        # the union-based dispatch rules stay quiet (base Participant
        # still declares it) but the PAXOS scheme's flow graph now has
        # DECISION senders with no receiver
        paths=("repro/protocols/paxos.py",),
        replacements=((
            'MsgType.DECISION: "_handle_decision",\n', "",
        ),),
        append="",
        expect_rule="msgflow/orphan-send",
    ),
    Mutation(
        name="inject-sync-fsync",
        # a bare fsync inside the group-commit barrier coroutine stalls
        # the daemon's event loop (the allowlisted wal.sync() is the one
        # designated site)
        paths=("repro/rt/group_commit.py",),
        replacements=(
            ("import asyncio", "import asyncio\nimport os"),
            (
                "                if self.hold_s > 0:",
                "                os.fsync(0)\n"
                "                if self.hold_s > 0:",
            ),
        ),
        append="",
        expect_rule="blocking/sync-fsync",
    ),
]


def run_lint(src_dir: Path) -> tuple[int, dict]:
    env = dict(os.environ, PYTHONPATH=str(src_dir))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"lint crashed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return proc.returncode, json.loads(proc.stdout)


def mutate(src_dir: Path, mutation: Mutation) -> None:
    for path in mutation.paths:
        target = src_dir / path
        text = target.read_text()
        for old, new in mutation.replacements:
            if old not in text:
                raise SystemExit(
                    f"{mutation.name}: pattern not found in {path!r}: "
                    f"{old!r} — the mutation no longer applies, update "
                    f"this script"
                )
            text = text.replace(old, new)
        target.write_text(text + mutation.append)


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="lint-mutation-") as tmp:
        pristine = Path(tmp) / "src"
        shutil.copytree(SRC, pristine)

        code, report = run_lint(pristine)
        if code != 0 or report["findings"]:
            raise SystemExit(
                "pristine copy is not clean — fix the lint findings before "
                f"trusting the mutation check:\n{json.dumps(report, indent=2)}"
            )
        print("pristine copy: clean (exit 0)")

        for mutation in MUTATIONS:
            mutated = Path(tmp) / f"src-{mutation.name}"
            shutil.copytree(SRC, mutated)
            mutate(mutated, mutation)
            code, report = run_lint(mutated)
            rules = [f["rule"] for f in report["findings"]]
            if code == 1 and mutation.expect_rule in rules:
                print(f"{mutation.name}: caught by {mutation.expect_rule}")
            else:
                failures.append(mutation.name)
                print(
                    f"{mutation.name}: NOT CAUGHT "
                    f"(exit {code}, rules {rules})"
                )

    if failures:
        print(f"\n{len(failures)} mutation(s) survived: {failures}")
        return 1
    print(f"\nall {len(MUTATIONS)} mutations caught")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
