"""Repo-level pytest configuration.

Makes ``import repro`` work from a source checkout even when the package has
not been pip-installed (offline environments without the ``wheel`` package
cannot build PEP-660 editable installs).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
